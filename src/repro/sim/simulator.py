"""Top-level communication simulator (paper Section 5).

:class:`CommunicationSimulator` runs an instruction stream on a
:class:`~repro.sim.machine.QuantumMachine`: the scheduler issues operations as
their dependencies resolve, the control unit translates each operation into
planned communications via the machine's layout, and the selected transport
backend services them under contention.  The scheduler/control/issue-retire
loop is backend-agnostic — the fluid flow model and the detailed per-pair
model plug in through :mod:`repro.sim.transport` — and the result is a
:class:`~repro.sim.results.SimulationResult` whose makespan is the paper's
"runtime" metric (Figure 16).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import SimulationError
from ..trace import OperationIssued, OperationRetired, RunEnded, TraceBus
from ..trace.records import WarmStartApplied, machine_record, warm_start_record_fields
from ..workloads.instructions import InstructionStream, TwoQubitOp
from .control import ControlUnit, PlannedCommunication
from .engine import SimulationEngine
from .machine import QuantumMachine
from .results import OperationRecord, SimulationResult
from .scheduler import InstructionScheduler
from .transport import create_transport


@dataclass
class _OpState:
    """Progress of one in-flight operation."""

    op: TwoQubitOp
    issue_us: float
    communications: List[PlannedCommunication]
    next_index: int = 0
    gate_done: bool = False
    total_hops: int = 0
    channel_count: int = 0


class CommunicationSimulator:
    """Runs instruction streams on a quantum machine and reports runtime.

    ``backend`` selects the transport granularity by registry name:
    ``"fluid"`` (the default) services communications as max-min fair flows,
    ``"detailed"`` simulates every EPR pair through the shared node hardware.
    ``allocator`` selects the fluid backend's rate allocator: the default
    ``"incremental"`` recomputes only the affected component of flows on each
    event, ``"reference"`` recomputes every rate from scratch (the original,
    much slower behaviour kept as a correctness oracle).
    """

    def __init__(
        self,
        machine: QuantumMachine,
        *,
        allocator: str = "incremental",
        backend: str = "fluid",
    ) -> None:
        self.machine = machine
        self.allocator = allocator
        self.backend = backend

    def run(
        self,
        stream: InstructionStream,
        *,
        max_events: Optional[int] = None,
        trace: Optional[TraceBus] = None,
    ) -> SimulationResult:
        """Simulate ``stream`` to completion and return the result.

        ``trace`` attaches a trace bus for the run: the engine, the transport
        and this simulator emit typed records onto it (run header/footer,
        operation issue/retire, channel open/close, flow rate changes).
        Untraced runs skip all of it behind ``is not None`` guards.
        """
        if stream.num_qubits > self.machine.num_qubits:
            raise SimulationError(
                f"workload uses {stream.num_qubits} logical qubits but the machine "
                f"has only {self.machine.num_qubits}"
            )
        engine = SimulationEngine(trace=trace)
        transport = create_transport(
            self.backend, engine, self.machine, allocator=self.allocator
        )
        control = ControlUnit(self.machine)
        control.reset()
        scheduler = InstructionScheduler(stream)
        records: List[OperationRecord] = []
        states: Dict[int, _OpState] = {}
        if trace is not None:
            trace.emit(
                machine_record(
                    self.machine,
                    workload=stream.name,
                    operations=scheduler.total_operations,
                )
            )
        warm_start = self.machine.warm_start
        if trace is not None and warm_start is not None and trace.wants(WarmStartApplied.kind):
            trace.emit(WarmStartApplied(t_us=0.0, **warm_start_record_fields(warm_start)))

        def issue_ready() -> None:
            for op in scheduler.ready_operations():
                scheduler.mark_issued(op.index)
                state = _OpState(
                    op=op,
                    issue_us=engine.now,
                    communications=control.plan_operation(op),
                )
                states[op.index] = state
                if trace is not None:
                    trace.emit(
                        OperationIssued(
                            t_us=engine.now,
                            op_index=op.index,
                            qubit_a=op.qubit_a,
                            qubit_b=op.qubit_b,
                        )
                    )
                advance(state)

        def advance(state: _OpState) -> None:
            """Run the operation's phase machine: comms, gate, remaining comms."""
            if state.next_index < len(state.communications):
                planned = state.communications[state.next_index]
                state.next_index += 1
                if planned.is_local:
                    advance(state)
                    return
                control.issue_messages(planned)
                state.total_hops += planned.hops
                state.channel_count += 1
                transport.start(planned, lambda s=state: after_communication(s))
                return
            if not state.gate_done:
                state.gate_done = True
                engine.schedule(self.machine.logical_gate_us, lambda s=state: complete(s))
                return
            complete(state)

        def after_communication(state: _OpState) -> None:
            # The logical gate executes after the first communication brings
            # the operands together; any remaining communications (return
            # trips) happen after the gate.
            if not state.gate_done and state.next_index >= 1:
                state.gate_done = True
                engine.schedule(self.machine.logical_gate_us, lambda s=state: advance(s))
                return
            advance(state)

        def complete(state: _OpState) -> None:
            records.append(
                OperationRecord(
                    index=state.op.index,
                    qubit_a=state.op.qubit_a,
                    qubit_b=state.op.qubit_b,
                    issue_us=state.issue_us,
                    complete_us=engine.now,
                    channel_count=state.channel_count,
                    total_hops=state.total_hops,
                )
            )
            del states[state.op.index]
            if trace is not None:
                trace.emit(
                    OperationRetired(
                        t_us=engine.now,
                        op_index=state.op.index,
                        channel_count=state.channel_count,
                        total_hops=state.total_hops,
                    )
                )
            scheduler.mark_completed(state.op.index)
            issue_ready()

        issue_ready()
        engine.run(max_events=max_events)
        if not scheduler.finished:
            raise SimulationError(
                f"simulation ended with {scheduler.completed_count}/"
                f"{scheduler.total_operations} operations completed"
            )
        makespan = engine.now
        if trace is not None:
            trace.emit(
                RunEnded(
                    t_us=makespan,
                    makespan_us=makespan,
                    operations=len(records),
                    channels=len(transport.records),
                )
            )
        return SimulationResult(
            workload_name=stream.name,
            machine_description=self.machine.describe(),
            makespan_us=makespan,
            operations=records,
            channels=transport.records,
            resource_utilisation=transport.utilisation_report(makespan),
            backend=transport.name,
            target_fidelity=(
                self.machine.params.threshold_fidelity
                if self.machine.track_fidelity
                else None
            ),
            metadata={
                "classical_messages": control.messages_issued,
                "logical_gate_us": self.machine.logical_gate_us,
                "allocation": self.machine.allocation.label,
                "layout": self.machine.layout_name,
                # Cross-run warm-start counters (None when the machine was
                # built without warm-start attachment, e.g. directly in
                # tests).  Metadata is not part of the flat batch record, so
                # the historical schema-2 bytes are unaffected.
                "warm_start": dict(warm_start) if warm_start is not None else None,
            },
        )
