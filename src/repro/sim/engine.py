"""Minimal discrete-event simulation kernel.

A deliberately small, dependency-free engine: events are (time, priority,
sequence) ordered callbacks on a binary heap.  Both the detailed per-pair
simulator and the flow simulator drive their state machines through this
kernel, so simulated time handling, determinism and stop conditions live in
one place.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional

from ..errors import SimulationError
from ..trace.records import EventDispatched

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..trace import TraceBus

#: Compaction trigger: never compact heaps smaller than this (the rebuild
#: would cost more than the dead entries), and above it only when more than
#: half the heap is cancelled — which bounds the heap at ~2x the live events.
_COMPACT_MIN_HEAP = 64


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering is by time, then priority (lower first), then insertion sequence,
    which makes simulations fully deterministic.
    """

    time: float
    priority: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    owner: Optional["SimulationEngine"] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Prevent the event from firing.

        The entry stays in its engine's heap (removing from the middle of a
        binary heap is O(n)) but the engine is told, so it can compact the
        heap once cancelled entries dominate — without that accounting a
        workload that reschedules aggressively (the flow transport cancels
        and reissues a completion event per reallocation) leaks heap entries
        linearly in event count.
        """
        if not self.cancelled:
            self.cancelled = True
            if self.owner is not None:
                self.owner._note_cancellation()


class SimulationEngine:
    """Heap-based discrete-event loop with deterministic ordering.

    ``trace`` optionally attaches a :class:`~repro.trace.TraceBus`; components
    driving their state machines through the engine discover it there, so one
    constructor argument wires observability through a whole simulation.
    """

    def __init__(self, *, trace: Optional["TraceBus"] = None) -> None:
        self._now = 0.0
        self._heap: List[Event] = []
        self._sequence = 0
        self._processed = 0
        self._running = False
        self._cancelled_pending = 0
        self.trace = trace

    # -- clock -----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still scheduled (including cancelled ones)."""
        return len(self._heap)

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying heap slots (compaction input)."""
        return self._cancelled_pending

    # -- scheduling ----------------------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable[[], None], *, priority: int = 0
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` microseconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, priority=priority)

    def schedule_at(
        self, time: float, callback: Callable[[], None], *, priority: int = 0
    ) -> Event:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        event = Event(
            time=time, priority=priority, sequence=self._sequence, callback=callback, owner=self
        )
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return event

    # -- cancellation accounting ------------------------------------------------------

    def _note_cancellation(self) -> None:
        # Cancelling an event that already fired (possible through stale
        # references) must not overcount: cancelled-in-heap never exceeds the
        # heap size, so clamping keeps the counter sound either way.
        self._cancelled_pending = min(self._cancelled_pending + 1, len(self._heap))
        if (
            len(self._heap) >= _COMPACT_MIN_HEAP
            and self._cancelled_pending * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries.

        Event ordering is total (time, priority, unique sequence), so
        ``heapify`` reproduces exactly the pop order the thinned heap would
        have had — compaction is invisible to the simulation.
        """
        self._heap = [event for event in self._heap if not event.cancelled]
        heapq.heapify(self._heap)
        self._cancelled_pending = 0

    # -- execution --------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event.  Returns False when none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled_pending = max(self._cancelled_pending - 1, 0)
                continue
            self._now = event.time
            self._processed += 1
            if self.trace is not None:
                self._trace_dispatch(event)
            event.callback()
            return True
        return False

    def _trace_dispatch(self, event: Event) -> None:
        if self.trace.wants(EventDispatched.kind):
            self.trace.emit(
                EventDispatched(t_us=event.time, sequence=event.sequence, priority=event.priority)
            )

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the event heap drains, ``until`` is reached, or ``max_events``.

        Returns the simulated time at which the run stopped.
        """
        self._running = True
        executed = 0
        try:
            while self._heap:
                if max_events is not None and executed >= max_events:
                    break
                next_event = self._peek()
                if next_event is None:
                    break
                if until is not None and next_event.time > until:
                    self._now = until
                    break
                if not self.step():
                    break
                executed += 1
        finally:
            self._running = False
        return self._now

    def _peek(self) -> Optional[Event]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._cancelled_pending = max(self._cancelled_pending - 1, 0)
        return self._heap[0] if self._heap else None

    def drain(self) -> None:
        """Discard all pending events (used when aborting a simulation)."""
        self._heap.clear()
        self._cancelled_pending = 0


class Timer:
    """Convenience wrapper: a cancellable one-shot timer on an engine."""

    def __init__(self, engine: SimulationEngine) -> None:
        self._engine = engine
        self._event: Optional[Event] = None

    def start(self, delay: float, callback: Callable[[], None]) -> None:
        """(Re)arm the timer; any previously armed timer is cancelled."""
        self.cancel()

        def _fire() -> None:
            # Disarm before invoking so ``armed`` is accurate inside the
            # callback and a callback may re-arm the timer.
            self._event = None
            callback()

        self._event = self._engine.schedule(delay, _fire)

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def armed(self) -> bool:
        return self._event is not None and not self._event.cancelled
