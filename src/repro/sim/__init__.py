"""Event-driven communication simulator (paper Section 5).

The paper built a Java event-driven simulator to study how resource allocation
(teleporters *t*, generators *g*, queue purifiers *p*) and contention affect
the runtime of communication-heavy kernels.  This subpackage is the Python
equivalent, with two fidelity levels:

* **Flow mode** (:mod:`repro.sim.flow`) — every active logical communication
  is a fluid flow whose rate is limited by its fair share of the teleporter,
  generator and purifier bandwidth along its path.  This is the mode used to
  regenerate Figure 16 on large grids.
* **Detailed mode** (:mod:`repro.sim.channel_setup`) — individual EPR pairs
  are generated, chained-teleported hop by hop and queue-purified as discrete
  events.  It is exact but only practical for single channels or small grids;
  the test-suite uses it to validate the flow model's throughput estimates.

:class:`repro.sim.simulator.CommunicationSimulator` is the public entry point.
"""

from .engine import Event, SimulationEngine
from .resources import ResourcePool, ServiceCenter
from .machine import QuantumMachine
from .results import ChannelRecord, OperationRecord, SimulationResult
from .simulator import CommunicationSimulator
from .scheduler import InstructionScheduler
from .qpurifier import QueuePurifierModel

__all__ = [
    "ChannelRecord",
    "CommunicationSimulator",
    "Event",
    "InstructionScheduler",
    "OperationRecord",
    "QuantumMachine",
    "QueuePurifierModel",
    "ResourcePool",
    "ServiceCenter",
    "SimulationEngine",
    "SimulationResult",
]
