"""Event-driven communication simulator (paper Section 5).

The paper built a Java event-driven simulator to study how resource allocation
(teleporters *t*, generators *g*, queue purifiers *p*) and contention affect
the runtime of communication-heavy kernels.  This subpackage is the Python
equivalent, with two fidelity levels:

Both fidelity levels are :class:`~repro.sim.transport.TransportBackend`
implementations selectable by name:

* **``fluid``** (:mod:`repro.sim.flow`) — every active logical communication
  is a fluid flow whose rate is limited by its fair share of the teleporter,
  generator and purifier bandwidth along its path.  This is the mode used to
  regenerate Figure 16 on large grids.
* **``detailed``** (:mod:`repro.sim.detailed`) — individual EPR pairs are
  generated, chained-teleported hop by hop and queue-purified as discrete
  events, with teleporter-set/storage/purifier queueing shared between
  concurrent channels.  Exact but much slower; ``repro.verify`` uses it to
  validate the fluid model end to end.  (:mod:`repro.sim.channel_setup`
  keeps the original single-channel study on the same components.)

:class:`repro.sim.simulator.CommunicationSimulator` is the public entry
point; its ``backend`` argument selects the granularity.
"""

from .engine import Event, SimulationEngine
from .fidelity import ChannelFidelityModel, ChannelFidelityProfile
from .resources import ResourcePool, ServiceCenter
from .machine import QuantumMachine
from .results import ChannelRecord, OperationRecord, SimulationResult
from .simulator import CommunicationSimulator
from .scheduler import InstructionScheduler
from .qpurifier import QueuePurifierModel
from .transport import (
    TransportBackend,
    backend_descriptions,
    backend_names,
    create_transport,
    get_backend,
    register_backend,
)

__all__ = [
    "ChannelFidelityModel",
    "ChannelFidelityProfile",
    "ChannelRecord",
    "CommunicationSimulator",
    "Event",
    "InstructionScheduler",
    "OperationRecord",
    "QuantumMachine",
    "QueuePurifierModel",
    "ResourcePool",
    "ServiceCenter",
    "SimulationEngine",
    "SimulationResult",
    "TransportBackend",
    "backend_descriptions",
    "backend_names",
    "create_transport",
    "get_backend",
    "register_backend",
]
