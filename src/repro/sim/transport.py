"""Pluggable transport backends: the contract both simulation granularities share.

The communication simulator translates an instruction stream into planned
communications; *how* those communications are serviced is the transport
backend's business.  Two implementations ship with the repository:

* ``fluid`` (:mod:`repro.sim.flow`) — every active communication is a flow
  sharing resource bandwidth max-min fairly.  Fast enough for large grids and
  full sweeps; the granularity the paper's Figure 16 runs at.
* ``detailed`` (:mod:`repro.sim.detailed`) — every raw EPR pair is generated,
  chained-teleported hop by hop and queue-purified as discrete events, with
  teleporter-set and storage queueing shared across concurrent channels.
  Slower, but it models the hardware at the granularity the paper used to
  validate the fluid model.

:class:`TransportBackend` pins down the contract (open a channel for a
planned communication, call back on completion, report channel records and
per-class utilisation, emit channel open/close on the trace bus), and the
registry below lets every layer above — scenario specs, the runner, the CLI,
the verify harness — select a backend by name.
"""

from __future__ import annotations

import dataclasses
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, ClassVar, Dict, List, Optional, Tuple, Type

from ..errors import ConfigurationError, SimulationError
from ..network.topology import LinkId
from ..trace.records import ChannelClosed, ChannelFidelity, ChannelOpened, RouteChosen
from .results import ChannelRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..network.routing import LoadBalancer
    from .control import PlannedCommunication
    from .engine import SimulationEngine
    from .fidelity import ChannelFidelityModel
    from .machine import QuantumMachine


class TransportBackend(ABC):
    """Services planned communications on a machine, one channel per request.

    Subclasses implement :meth:`start` (begin servicing, invoke the callback
    when the communication completes) and :meth:`utilisation_report`.  The
    base class owns what every backend must agree on: flow-id allocation,
    the per-channel :class:`~repro.sim.results.ChannelRecord` log, and the
    :class:`~repro.trace.ChannelOpened`/:class:`~repro.trace.ChannelClosed`
    trace records — so traces from different backends stay diffable.
    """

    #: Registry name; subclasses must override.
    name: ClassVar[str] = "abstract"
    #: One-line description shown by ``python -m repro backends``.
    description: ClassVar[str] = ""
    #: Whether the backend takes the max-min ``allocator`` option.
    uses_allocator: ClassVar[bool] = False

    def __init__(self, engine: "SimulationEngine", machine: "QuantumMachine") -> None:
        self.engine = engine
        self.machine = machine
        self._records: List[ChannelRecord] = []
        self._next_flow_id = 0
        #: Shared per-channel fidelity model; None unless the machine carries
        #: a noise model, so untracked runs pay nothing on any path below.
        self.fidelity: Optional["ChannelFidelityModel"] = machine.fidelity_model()
        #: Load balancer; None unless the scenario carries a
        #: ``network.routing`` section, so unbalanced runs pay nothing.
        self.balancer: Optional["LoadBalancer"] = machine.load_balancer()
        #: The balancer's load view: active channels per link, maintained
        #: identically by both backends (channel open/close counts, never
        #: fluid rates), which is what makes policy choices — and therefore
        #: paths, records and goldens — backend-invariant.
        self._link_flows: Dict[LinkId, int] = {}
        self._flow_links: Dict[int, Tuple[LinkId, ...]] = {}

    # -- contract -----------------------------------------------------------------

    @abstractmethod
    def start(self, planned: "PlannedCommunication", done: Callable[[], None]) -> None:
        """Begin servicing ``planned``; ``done`` fires at completion."""

    @abstractmethod
    def utilisation_report(self, elapsed_us: float, *, clamp: bool = True) -> Dict[str, float]:
        """Average utilisation per resource *class* over ``elapsed_us``."""

    @property
    def records(self) -> List[ChannelRecord]:
        """Per-channel records, in completion order."""
        return self._records

    # -- shared channel bookkeeping ---------------------------------------------------

    def _open_channel(
        self, planned: "PlannedCommunication"
    ) -> Tuple[int, "PlannedCommunication"]:
        """Allocate a flow id, resolve the path and emit the open records.

        Returns the (possibly re-planned) communication: when the machine
        carries a load balancer, the policy picks one of the fabric's
        candidate paths against the current link-load view *here*, at channel
        open — the re-evaluation point the adaptive policy is named for — and
        the channel is re-planned along the chosen path (a
        :class:`~repro.trace.RouteChosen` record precedes the open).  Without
        a balancer the planner's deterministic route stands untouched.

        On noise-tracked runs this is also where the channel's purification
        level is selected: the fidelity profile for the channel's hop count is
        resolved (and memoized) here, at channel-open time, so both backends
        commit to the same threshold-driven level before servicing begins.
        """
        if planned.plan is None:
            raise SimulationError("local communications do not need the transport backend")
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        trace = self.engine.trace
        request = planned.request
        if self.balancer is not None:
            planner = self.machine.planner
            candidates = planner.candidates(request.source, request.dest)
            index = self.balancer.choose(
                flow_id, request.source, request.dest, candidates, self._link_flows
            )
            chosen = candidates[index]
            plan = planner.plan_via(request.source, request.dest, chosen)
            planned = dataclasses.replace(planned, plan=plan)
            links = chosen.links
            for link in links:
                self._link_flows[link] = self._link_flows.get(link, 0) + 1
            self._flow_links[flow_id] = links
            if trace is not None:
                trace.emit(
                    RouteChosen(
                        t_us=self.engine.now,
                        flow_id=flow_id,
                        policy=self.balancer.policy,
                        path=chosen.stable_name,
                        candidates=len(candidates),
                    )
                )
        if self.fidelity is not None:
            self.fidelity.profile(planned.hops)
        if trace is not None:
            trace.emit(
                ChannelOpened(
                    t_us=self.engine.now,
                    flow_id=flow_id,
                    source=request.source.as_tuple(),
                    destination=request.dest.as_tuple(),
                    hops=planned.hops,
                    purpose=request.purpose,
                )
            )
        return flow_id, planned

    def _close_channel(
        self,
        flow_id: int,
        planned: "PlannedCommunication",
        *,
        start_us: float,
        pairs_transited: float,
        delivered_fidelity: Optional[float] = None,
        purification_level: Optional[int] = None,
    ) -> None:
        """Log the channel record and emit :class:`ChannelClosed`.

        On noise-tracked runs the record additionally carries the delivered
        fidelity and a :class:`~repro.trace.ChannelFidelity` record follows
        the close.  A backend that measures fidelity itself (the detailed
        model's per-pair purification outcomes) passes ``delivered_fidelity``
        and ``purification_level``; backends that do not (the fluid model)
        inherit the analytical profile values.
        """
        links = self._flow_links.pop(flow_id, None)
        if links is not None:
            for link in links:
                remaining = self._link_flows.get(link, 0) - 1
                if remaining > 0:
                    self._link_flows[link] = remaining
                else:
                    self._link_flows.pop(link, None)
        request = planned.request
        profile = None
        if self.fidelity is not None:
            profile = self.fidelity.profile(planned.hops)
            if delivered_fidelity is None:
                delivered_fidelity = profile.delivered_fidelity
            if purification_level is None:
                purification_level = profile.purification_level
        self._records.append(
            ChannelRecord(
                source=request.source.as_tuple(),
                destination=request.dest.as_tuple(),
                hops=planned.hops,
                start_us=start_us,
                end_us=self.engine.now,
                pairs_transited=pairs_transited,
                purpose=request.purpose,
                qubit=request.qubit,
                delivered_fidelity=delivered_fidelity,
                purification_level=purification_level,
            )
        )
        trace = self.engine.trace
        if trace is not None:
            trace.emit(
                ChannelClosed(
                    t_us=self.engine.now,
                    flow_id=flow_id,
                    source=request.source.as_tuple(),
                    destination=request.dest.as_tuple(),
                    hops=planned.hops,
                    pairs_transited=pairs_transited,
                )
            )
            if profile is not None:
                trace.emit(
                    ChannelFidelity(
                        t_us=self.engine.now,
                        flow_id=flow_id,
                        hops=planned.hops,
                        purification_level=purification_level,
                        arrival_fidelity=profile.arrival_fidelity,
                        delivered_fidelity=delivered_fidelity,
                        target_fidelity=profile.target_fidelity,
                        meets_target=delivered_fidelity >= profile.target_fidelity,
                    )
                )


# -- registry ---------------------------------------------------------------------------

_REGISTRY: Dict[str, Type[TransportBackend]] = {}


def register_backend(cls: Type[TransportBackend]) -> Type[TransportBackend]:
    """Class decorator: make ``cls`` selectable by its ``name``."""
    name = getattr(cls, "name", None)
    if not isinstance(name, str) or not name or name == TransportBackend.name:
        raise ConfigurationError(f"transport backend {cls!r} needs a distinct 'name'")
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ConfigurationError(
            f"transport backend name {name!r} is already registered to {existing!r}"
        )
    _REGISTRY[name] = cls
    return cls


def _ensure_builtin_backends() -> None:
    # The built-in backends live in sibling modules that import this one, so
    # they register through an import cycle-free lazy hook.
    from . import detailed, flow  # noqa: F401


def backend_names() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    _ensure_builtin_backends()
    return tuple(sorted(_REGISTRY))


def backend_descriptions() -> Dict[str, str]:
    """``{name: one-line description}`` for every registered backend."""
    _ensure_builtin_backends()
    return {name: _REGISTRY[name].description for name in sorted(_REGISTRY)}


def get_backend(name: str) -> Type[TransportBackend]:
    """The backend class registered under ``name``."""
    _ensure_builtin_backends()
    key = (name or "").strip()
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown transport backend {name!r}; registered: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key]


def create_transport(
    name: str,
    engine: "SimulationEngine",
    machine: "QuantumMachine",
    *,
    allocator: str = "incremental",
) -> TransportBackend:
    """Instantiate the backend registered under ``name``.

    ``allocator`` reaches only backends that declare ``uses_allocator`` (the
    fluid flow model's max-min implementation choice); granularities without
    a rate allocator ignore it by construction rather than by convention.
    """
    cls = get_backend(name)
    if cls.uses_allocator:
        return cls(engine, machine, allocator=allocator)
    return cls(engine, machine)
