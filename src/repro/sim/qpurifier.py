"""Queue purifier model (paper Section 5.1, Figure 14).

A naive tree purifier needs ``2**n - 1`` hardware purifiers for a depth-``n``
tree.  The paper's queue purifier instead keeps one queue per tree level:
incoming raw pairs are purified pairwise at level 0, survivors move to the
level-1 queue, and so on; a depth-``n`` tree needs only ``n`` purifier units,
failed rounds simply shrink the affected queue, and movement between levels is
minimal.  The price is latency: rounds at a level are serialised.

Two views are provided:

* :class:`QueuePurifierModel` — closed-form throughput/latency/served-rounds
  numbers used by the flow simulator and the ablation benchmarks;
* :class:`QueuePurifier` — an event-driven process on a
  :class:`~repro.sim.engine.SimulationEngine` that consumes raw pairs and
  emits good pairs, used by the detailed channel simulation and the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..errors import ConfigurationError
from ..physics.parameters import IonTrapParameters
from ..physics.purification import PurificationProtocol
from ..physics.states import BellDiagonalState
from ..trace.records import PurificationMilestone
from .engine import SimulationEngine
from .resources import ServiceCenter


@dataclass(frozen=True)
class QueuePurifierModel:
    """Closed-form behaviour of a bank of queue purifiers.

    Attributes
    ----------
    units:
        Number of hardware purifier units available (the *p* of Figure 16).
    depth:
        Purification tree depth each good pair must climb.
    round_time_us:
        Duration of one purification round (Table 1's ~121 us plus any
        classical round trip, which the caller folds in).
    success_probability:
        Per-round success probability; 1.0 reproduces the paper's idealised
        ``2**n`` accounting, smaller values add the expected-yield overhead.
    """

    units: int = 1
    depth: int = 3
    round_time_us: float = 121.0
    success_probability: float = 1.0

    def __post_init__(self) -> None:
        if self.units < 1:
            raise ConfigurationError(f"units must be >= 1, got {self.units}")
        if self.depth < 0:
            raise ConfigurationError(f"depth must be >= 0, got {self.depth}")
        if self.round_time_us <= 0:
            raise ConfigurationError(f"round_time_us must be positive, got {self.round_time_us}")
        if not (0.0 < self.success_probability <= 1.0):
            raise ConfigurationError(
                f"success_probability must be in (0, 1], got {self.success_probability}"
            )

    @property
    def raw_pairs_per_good_pair(self) -> float:
        """Expected raw input pairs consumed per good output pair."""
        return (2.0 / self.success_probability) ** self.depth

    @property
    def rounds_per_good_pair(self) -> float:
        """Expected purification rounds executed per good output pair.

        A depth-``n`` binary tree has ``2**n - 1`` internal nodes; failed
        rounds inflate the count by the inverse success probability per level.
        """
        if self.depth == 0:
            return 0.0
        # Working backward from the single output pair: producing one pair at
        # tree level j+1 takes 1/s expected rounds at level j, each consuming
        # two level-j pairs, so level j executes (2/s)**(depth-1-j) / s
        # expected rounds per good output pair.
        total = 0.0
        ratio = 2.0 / self.success_probability
        for j in range(self.depth):
            total += (ratio ** (self.depth - 1 - j)) / self.success_probability
        return total

    @property
    def good_pair_period_us(self) -> float:
        """Steady-state time between good pairs from one bank of ``units``."""
        return self.rounds_per_good_pair * self.round_time_us / self.units

    @property
    def pipeline_latency_us(self) -> float:
        """Latency for the first good pair once raw pairs stream in."""
        return self.depth * self.round_time_us

    def throughput_per_us(self) -> float:
        """Good pairs produced per microsecond in steady state."""
        if self.depth == 0:
            return float("inf")
        return 1.0 / self.good_pair_period_us

    def hardware_units_naive_tree(self) -> int:
        """Hardware purifiers a naive tree implementation would need."""
        return max(2 ** self.depth - 1, 0)

    def time_to_produce(self, good_pairs: int) -> float:
        """Time to produce ``good_pairs`` outputs, including pipeline fill."""
        if good_pairs < 0:
            raise ConfigurationError(f"good_pairs must be non-negative, got {good_pairs}")
        if good_pairs == 0 or self.depth == 0:
            return 0.0
        return self.pipeline_latency_us + (good_pairs - 1) * self.good_pair_period_us


class QueuePurifier:
    """Event-driven queue purifier bank.

    Raw pairs are injected with :meth:`accept_raw_pair`; every time a pair
    climbs past the top level a good pair is emitted via ``on_good_pair``.
    The ``units`` purifier units are shared across levels through a single
    :class:`~repro.sim.resources.ServiceCenter`, matching the paper's design
    where a handful of units serve the whole queue structure.

    When ``input_state`` and ``protocol`` are given, the purifier additionally
    tracks the Bell-diagonal state of every queued pair and computes each
    round's outcome through the protocol's exact recurrence — the per-pair
    fidelity accounting the detailed transport backend reports.  The tracking
    is purely computational (no extra events), so the queueing dynamics are
    identical with it on or off.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        *,
        units: int = 1,
        depth: int = 3,
        params: Optional[IonTrapParameters] = None,
        on_good_pair: Optional[Callable[[], None]] = None,
        name: str = "queue_purifier",
        service: Optional[ServiceCenter] = None,
        input_state: Optional[BellDiagonalState] = None,
        protocol: Optional[PurificationProtocol] = None,
    ) -> None:
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        if (input_state is None) != (protocol is None):
            raise ConfigurationError(
                "fidelity tracking needs both input_state and protocol (or neither)"
            )
        self.engine = engine
        self.depth = depth
        self.params = params or IonTrapParameters.default()
        self.on_good_pair = on_good_pair
        self.name = name
        # ``service`` shares one bank of purifier units between several queue
        # structures — the multi-channel detailed backend runs one queue per
        # channel but every channel terminating at a node contends for that
        # node's ``p`` physical units.
        self._service = service if service is not None else ServiceCenter(
            engine, units, name=f"{name}.units"
        )
        self._levels: List[int] = [0] * (depth + 1)
        self._good_pairs = 0
        self._rounds_executed = 0
        self._input_state = input_state
        self._protocol = protocol
        #: FIFO state queue per level, parallel to the ``_levels`` counters.
        self._level_states: Optional[List[List[BellDiagonalState]]] = (
            [[] for _ in range(depth + 1)] if input_state is not None else None
        )
        self._good_pair_fidelities: List[float] = []

    # -- state -------------------------------------------------------------------

    @property
    def good_pairs_produced(self) -> int:
        return self._good_pairs

    @property
    def rounds_executed(self) -> int:
        return self._rounds_executed

    @property
    def level_occupancy(self) -> List[int]:
        """Pairs currently waiting at each level (level 0 = raw input)."""
        return list(self._levels)

    @property
    def service(self) -> ServiceCenter:
        return self._service

    @property
    def good_pair_fidelities(self) -> List[float]:
        """Fidelity of each emitted good pair (empty unless tracking states)."""
        return list(self._good_pair_fidelities)

    # -- operation ----------------------------------------------------------------

    def accept_raw_pair(self) -> None:
        """Inject one raw pair at level 0."""
        self._levels[0] += 1
        if self._level_states is not None:
            self._level_states[0].append(self._input_state)
        self._try_start_rounds()

    def _try_start_rounds(self) -> None:
        for level in range(self.depth):
            while self._levels[level] >= 2:
                self._levels[level] -= 2
                duration = self.params.times.purify_round(0.0)
                self._rounds_executed += 1
                out_state = None
                if self._level_states is not None:
                    # The outcome is a pure function of the two input states,
                    # so it is computed at submit time and merely delivered at
                    # round completion — no timing impact.
                    queue = self._level_states[level]
                    pair_a, pair_b = queue.pop(0), queue.pop(0)
                    out_state = self._protocol.round(pair_a, pair_b).state
                self._service.submit(
                    duration, lambda lv=level, st=out_state: self._round_done(lv, st)
                )

    def _round_done(self, level: int, state: Optional[BellDiagonalState] = None) -> None:
        self._levels[level + 1] += 1
        if self._level_states is not None and state is not None:
            self._level_states[level + 1].append(state)
        if level + 1 == self.depth:
            self._levels[level + 1] -= 1
            if self._level_states is not None:
                emitted = self._level_states[level + 1].pop(0)
                self._good_pair_fidelities.append(emitted.fidelity)
            self._good_pairs += 1
            trace = self.engine.trace
            if trace is not None and trace.wants(PurificationMilestone.kind):
                trace.emit(
                    PurificationMilestone(
                        t_us=self.engine.now,
                        purifier=self.name,
                        good_pairs=self._good_pairs,
                        rounds_executed=self._rounds_executed,
                    )
                )
            if self.on_good_pair is not None:
                self.on_good_pair()
        self._try_start_rounds()
