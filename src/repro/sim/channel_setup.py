"""Detailed (per-pair) simulation of a single channel setup.

The flow backend treats channel setup as a fluid; this module simulates it at
the granularity the hardware actually works at: individual raw EPR pairs are
taken from the virtual-wire buffers, swapped through every intermediate T'
node (queueing for that node's X or Y teleporter set), and fed into the
endpoint queue purifier until enough good pairs exist to teleport every
physical qubit of the logical operand.  The result reports the setup time,
where time was spent, and the steady-state pair rate — the numbers used to
validate the flow model and to reproduce the paper's claim that the design is
fully pipelined (only a few qubits are ever stored at any node).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.planner import ChannelPlan
from ..errors import SimulationError
from ..network.topology import LinkId
from .engine import SimulationEngine
from .generator import LinkGenerator
from .machine import QuantumMachine
from .qpurifier import QueuePurifier
from .teleporter import TeleporterNodeSim, swap_routing


@dataclass
class DetailedChannelResult:
    """Outcome of a detailed single-channel simulation."""

    hops: int
    good_pairs_delivered: int
    raw_pairs_injected: int
    setup_time_us: float
    first_good_pair_us: float
    teleports_performed: int
    purifier_rounds: int
    generator_utilisation: Dict[str, float] = field(default_factory=dict)
    teleporter_utilisation: Dict[str, float] = field(default_factory=dict)

    @property
    def steady_state_pair_period_us(self) -> float:
        """Average time between good pairs after the pipeline fills."""
        if self.good_pairs_delivered <= 1:
            return self.setup_time_us
        return (self.setup_time_us - self.first_good_pair_us) / (self.good_pairs_delivered - 1)

    def describe(self) -> str:
        return (
            f"DetailedChannelResult({self.hops} hops): "
            f"{self.good_pairs_delivered} good pairs in {self.setup_time_us:.0f} us "
            f"(first at {self.first_good_pair_us:.0f} us, "
            f"steady period {self.steady_state_pair_period_us:.1f} us), "
            f"{self.teleports_performed} teleports, {self.purifier_rounds} purifier rounds"
        )


class _PairPipeline:
    """Drives one raw pair hop-by-hop from the source to the endpoint purifier."""

    def __init__(self, setup: "DetailedChannelSetup") -> None:
        self.setup = setup
        self.hop_index = 0

    def start(self) -> None:
        self._take_link_pair()

    def _take_link_pair(self) -> None:
        link = self.setup.links[self.hop_index]
        self.setup.generators[link].take_pair(self._link_pair_ready)

    def _link_pair_ready(self) -> None:
        path_nodes = self.setup.plan.path.nodes
        # The swap extending the pair across this link happens at the node at
        # the link's far end (except for the final link, whose far end is the
        # destination where the pair is instead handed to the purifier).
        if self.hop_index < len(self.setup.links) - 1:
            node = path_nodes[self.hop_index + 1]
            dimension, turn = swap_routing(
                path_nodes[self.hop_index], node, path_nodes[self.hop_index + 2]
            )
            teleporter = self.setup.teleporters[node.as_tuple()]
            teleporter.store_incoming()
            teleporter.teleport_through(
                dimension, lambda t=teleporter: self._hop_done(t), turn=turn
            )
        else:
            self._deliver()

    def _hop_done(self, teleporter: TeleporterNodeSim) -> None:
        teleporter.release_storage()
        self.hop_index += 1
        self._take_link_pair()

    def _deliver(self) -> None:
        self.setup.on_pair_delivered(self)


class DetailedChannelSetup:
    """Simulates one channel setup at individual-pair granularity."""

    def __init__(
        self,
        machine: QuantumMachine,
        plan: ChannelPlan,
        *,
        good_pairs_needed: Optional[int] = None,
        link_buffer: Optional[int] = None,
        max_pairs_in_flight: Optional[int] = None,
        trace=None,
    ) -> None:
        if plan.hops < 1:
            raise SimulationError("a channel plan must span at least one hop")
        self.machine = machine
        self.plan = plan
        # The generators, teleporters and purifier below discover the trace
        # bus through the engine, so attaching one here traces the whole
        # per-pair pipeline (generation, swaps, purification milestones).
        self.engine = SimulationEngine(trace=trace)
        depth, default_raw = machine.detailed_pair_budget(plan.hops)
        if good_pairs_needed is not None:
            self.good_pairs_needed = good_pairs_needed
            self.raw_pairs_needed = good_pairs_needed * (2 ** depth)
        else:
            self.good_pairs_needed = machine.good_pairs_per_logical_communication()
            self.raw_pairs_needed = default_raw
        allocation = machine.allocation
        buffer = link_buffer if link_buffer is not None else max(allocation.teleporters_per_node, 2)
        self.links: List[LinkId] = list(plan.path.links)
        self.generators: Dict[LinkId, LinkGenerator] = {
            link: LinkGenerator(
                self.engine,
                generators=allocation.generators_per_node,
                buffer_capacity=buffer,
                params=machine.params,
                name=f"G{link}",
                rate_scale=machine.generator_bandwidth_scale,
            )
            for link in self.links
        }
        self.teleporters: Dict[tuple, TeleporterNodeSim] = {
            node.as_tuple(): TeleporterNodeSim(
                self.engine,
                node,
                spec=allocation.teleporter_spec,
                params=machine.params,
            )
            for node in plan.path.intermediate_nodes
        }
        self.purifier = QueuePurifier(
            self.engine,
            units=allocation.purifiers_per_node,
            depth=depth,
            params=machine.params,
            on_good_pair=self._good_pair_ready,
        )
        self._in_flight = 0
        self._injected = 0
        self._good_pairs = 0
        self._first_good_pair_us: Optional[float] = None
        # Keep the pipeline full without flooding the event queue: at most a
        # few pairs per hop are in flight, matching the paper's observation
        # that only a small number of qubits is stored anywhere at any time.
        default_window = 2 * max(len(self.links), 1) + 2
        self._window = max_pairs_in_flight or default_window

    # -- pair lifecycle ----------------------------------------------------------------

    def _inject_pairs(self) -> None:
        while self._in_flight < self._window and self._injected < self.raw_pairs_needed:
            self._injected += 1
            self._in_flight += 1
            _PairPipeline(self).start()

    def on_pair_delivered(self, pipeline: _PairPipeline) -> None:
        self._in_flight -= 1
        self.purifier.accept_raw_pair()
        self._inject_pairs()

    def _good_pair_ready(self) -> None:
        self._good_pairs += 1
        if self._first_good_pair_us is None:
            self._first_good_pair_us = self.engine.now

    # -- execution ------------------------------------------------------------------------

    def run(self) -> DetailedChannelResult:
        """Run until the required number of good pairs has been produced."""
        self._inject_pairs()
        while self._good_pairs < self.good_pairs_needed:
            if not self.engine.step():
                raise SimulationError(
                    "detailed channel simulation stalled before producing "
                    f"{self.good_pairs_needed} good pairs ({self._good_pairs} done)"
                )
        elapsed = self.engine.now
        generator_util = {
            link.stable_name: gen.service.stats.utilisation(elapsed)
            for link, gen in self.generators.items()
        }
        teleporter_util = {
            str(node): self.teleporters[node.as_tuple()].utilisation(elapsed)
            for node in self.plan.path.intermediate_nodes
        }
        return DetailedChannelResult(
            hops=self.plan.hops,
            good_pairs_delivered=self._good_pairs,
            raw_pairs_injected=self._injected,
            setup_time_us=elapsed,
            first_good_pair_us=self._first_good_pair_us or elapsed,
            teleports_performed=sum(t.teleports_performed for t in self.teleporters.values()),
            purifier_rounds=self.purifier.rounds_executed,
            generator_utilisation=generator_util,
            teleporter_utilisation=teleporter_util,
        )
