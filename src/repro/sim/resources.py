"""Simulation resources: counted pools and FIFO service centres.

The datapath units the paper allocates (teleporters per T' node, generators
per G node, queue purifiers per P node) are modelled as *service centres*:
``capacity`` identical servers with a FIFO queue.  Utilisation and queueing
statistics are tracked so simulation results can report where the bottleneck
was, which is the whole point of Figure 16.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

from ..errors import SimulationError
from .engine import SimulationEngine


@dataclass
class ResourceStats:
    """Aggregate statistics for one resource pool."""

    name: str
    capacity: int
    busy_time: float = 0.0
    jobs_served: int = 0
    total_wait: float = 0.0
    max_queue_length: int = 0

    def utilisation(self, elapsed: float) -> float:
        """Average fraction of servers busy over ``elapsed`` microseconds."""
        if elapsed <= 0 or self.capacity <= 0:
            return 0.0
        return min(self.busy_time / (elapsed * self.capacity), 1.0)

    def mean_wait(self) -> float:
        """Mean time jobs spent queueing before service."""
        if self.jobs_served == 0:
            return 0.0
        return self.total_wait / self.jobs_served


class ResourcePool:
    """A counted resource with explicit acquire/release semantics."""

    def __init__(self, engine: SimulationEngine, capacity: int, name: str = "pool") -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self._engine = engine
        self.capacity = capacity
        self.name = name
        self._available = capacity
        self._waiters: Deque[Callable[[], None]] = deque()
        self.stats = ResourceStats(name=name, capacity=capacity)

    @property
    def available(self) -> int:
        return self._available

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self, callback: Callable[[], None]) -> None:
        """Request one unit; ``callback`` runs (possibly immediately) when granted."""
        if self._available > 0:
            self._available -= 1
            callback()
        else:
            self._waiters.append(callback)
            self.stats.max_queue_length = max(self.stats.max_queue_length, len(self._waiters))

    def release(self) -> None:
        """Return one unit; the oldest waiter (if any) is granted it."""
        if self._waiters:
            callback = self._waiters.popleft()
            callback()
        else:
            if self._available >= self.capacity:
                raise SimulationError(f"{self.name}: release without matching acquire")
            self._available += 1


class ServiceCenter:
    """``capacity`` identical servers with a FIFO queue of fixed-duration jobs."""

    def __init__(self, engine: SimulationEngine, capacity: int, name: str = "service") -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self._engine = engine
        self.capacity = capacity
        self.name = name
        self._busy = 0
        self._queue: Deque[tuple] = deque()
        self.stats = ResourceStats(name=name, capacity=capacity)

    @property
    def busy(self) -> int:
        return self._busy

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def submit(self, duration: float, done: Optional[Callable[[], None]] = None) -> None:
        """Queue a job of ``duration`` microseconds; ``done`` fires at completion."""
        if duration < 0:
            raise SimulationError(f"duration must be non-negative, got {duration}")
        arrival = self._engine.now
        self._queue.append((arrival, duration, done))
        self.stats.max_queue_length = max(self.stats.max_queue_length, len(self._queue))
        self._dispatch()

    def _dispatch(self) -> None:
        while self._busy < self.capacity and self._queue:
            arrival, duration, done = self._queue.popleft()
            self._busy += 1
            self.stats.total_wait += self._engine.now - arrival
            self.stats.jobs_served += 1
            self.stats.busy_time += duration
            self._engine.schedule(duration, lambda d=done: self._finish(d))

    def _finish(self, done: Optional[Callable[[], None]]) -> None:
        self._busy -= 1
        if done is not None:
            done()
        self._dispatch()

    def throughput_per_us(self, job_duration: float) -> float:
        """Steady-state job completion rate for jobs of ``job_duration``."""
        if job_duration <= 0:
            raise SimulationError("job_duration must be positive")
        return self.capacity / job_duration
