"""The simulated machine: topology + layout + resource allocation + physics.

:class:`QuantumMachine` bundles everything the simulator needs to know about
the hardware: the mesh of T' nodes, the (t, g, p) allocation at each node, the
logical-qubit layout (Home Base or Mobile Qubit), the ion-trap parameters and
the purification policy.  It also exposes the per-resource *bandwidths* the
flow model shares between concurrent channels.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, Optional, Tuple

if TYPE_CHECKING:  # annotation-only imports; no runtime dependency edges
    from ..trace.records import RunStarted
    from .fidelity import ChannelFidelityModel

from ..core.logical import STEANE_LEVEL_2, LogicalQubitEncoding
from ..core.placement import PurificationPlacement, endpoint_only
from ..core.planner import ChannelPlanner
from ..errors import ConfigurationError
from ..network.fabrics import build_topology
from ..network.layout import MachineLayout, build_layout
from ..network.nodes import ResourceAllocation
from ..network.routing import DimensionOrder
from ..physics.parameters import IonTrapParameters


@dataclass(frozen=True)
class MachineConfig:
    """Declarative description of a machine (useful for sweeps and reports)."""

    width: int
    height: int
    allocation: ResourceAllocation
    layout_name: str
    num_qubits: int
    logical_gate_us: float
    protocol: str
    topology_kind: str = "mesh"

    @property
    def label(self) -> str:
        return (
            f"{self.width}x{self.height} {self.topology_kind} {self.layout_name} "
            f"{self.allocation.label}"
        )


@dataclass(frozen=True)
class FlowDemandProfile:
    """Per-hop-count work quantities of one logical communication.

    Every quantity the fluid transport charges to a resource depends only on
    the channel's hop count (the path decides *which* resources, not *how
    much*), so the profile is memoized per distance and shared by all flows
    of the same length.  Work is expressed in server-microseconds.
    """

    hops: int
    pairs: float
    good_pairs: int
    swap_work: float  # teleporter work per intermediate T' node
    generator_work: float  # generator work per traversed virtual-wire link
    purifier_work: float  # queue-purifier work per endpoint
    data_teleport_work: float  # endpoint teleporter work per endpoint
    floor_us: float  # latency floor: setup pipeline + data teleport


class QuantumMachine:
    """A mesh-connected ion-trap machine ready to be simulated."""

    def __init__(
        self,
        width: int,
        height: Optional[int] = None,
        *,
        topology_kind: str = "mesh",
        allocation: Optional[ResourceAllocation] = None,
        layout: str = "home_base",
        num_qubits: Optional[int] = None,
        params: Optional[IonTrapParameters] = None,
        placement: Optional[PurificationPlacement] = None,
        protocol: str = "dejmps",
        encoding: LogicalQubitEncoding = STEANE_LEVEL_2,
        logical_gate_us: float = 300.0,
        routing_order: DimensionOrder = DimensionOrder.XY,
        generator_bandwidth_scale: float = 1.0,
        track_fidelity: bool = False,
        target_fidelity: Optional[float] = None,
        routing_policy: Optional[str] = None,
        routing_hysteresis: Optional[float] = None,
        topology_options: Optional[Dict[str, int]] = None,
    ) -> None:
        if logical_gate_us < 0:
            raise ConfigurationError(f"logical_gate_us must be non-negative, got {logical_gate_us}")
        if generator_bandwidth_scale <= 0:
            raise ConfigurationError(
                f"generator_bandwidth_scale must be positive, got {generator_bandwidth_scale}"
            )
        self.allocation = allocation or ResourceAllocation()
        self.params = params or IonTrapParameters.default()
        if target_fidelity is not None:
            # The target folds into the threshold, so purification-level
            # selection (budget.endpoint_rounds), the fluid purifier work and
            # the detailed queue depth all follow the same target by
            # construction instead of by convention.
            if not (0.0 < target_fidelity < 1.0):
                raise ConfigurationError(
                    f"target_fidelity must be in (0, 1), got {target_fidelity}"
                )
            self.params = replace(self.params, threshold_error=1.0 - target_fidelity)
        self.track_fidelity = track_fidelity
        self._fidelity_model = None
        self.placement = placement or endpoint_only()
        self.encoding = encoding
        self.protocol = protocol
        self.logical_gate_us = logical_gate_us
        self.generator_bandwidth_scale = generator_bandwidth_scale
        self.topology = build_topology(
            topology_kind,
            width,
            height,
            allocation=self.allocation,
            cells_per_hop=self.params.cells_per_hop,
            **(topology_options or {}),
        )
        self.topology_kind = topology_kind
        #: Routing policy (see :mod:`repro.network.routing`); ``None`` keeps
        #: the historical single deterministic route per endpoint pair.
        self.routing_policy = routing_policy
        self.routing_hysteresis = routing_hysteresis
        self._load_balancer = None
        if routing_policy is not None:
            # Validate eagerly so a bad spec fails at machine build, not at
            # the first channel open mid-simulation.
            from ..network.routing import create_balancer

            self._load_balancer = create_balancer(
                routing_policy, hysteresis=routing_hysteresis
            )
        self.num_qubits = num_qubits or self.topology.qubit_capacity
        self.layout: MachineLayout = build_layout(layout, self.topology, self.num_qubits)
        self.layout_name = self.layout.name
        self.planner = ChannelPlanner(
            self.topology,
            self.params,
            placement=self.placement,
            protocol=protocol,
            encoding=encoding,
            order=routing_order,
        )
        self._flow_profiles: Dict[int, FlowDemandProfile] = {}
        #: Warm-start hooks (see :mod:`repro.scenarios.warmstart`): a shared
        #: (source, destination) → demand-dict cache consulted by the fluid
        #: transport, and the attachment info surfaced in result metadata.
        #: Both stay ``None`` unless a warm-start entry is adopted.
        self.demand_cache: Optional[Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], Dict]] = None
        self.warm_start: Optional[Dict[str, object]] = None

    def adopt_warm_state(
        self,
        *,
        flow_profiles: Dict[int, FlowDemandProfile],
        demand_cache: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], Dict],
        info: Dict[str, object],
    ) -> None:
        """Share warm-start state owned by a cross-run cache entry.

        The adopted dicts replace this machine's empty per-run memos; they
        hold pure functions of the machine *structure* (the warm-start key),
        so sharing them across runs cannot change any computed value — it
        only skips recomputation.
        """
        self._flow_profiles = flow_profiles
        self.demand_cache = demand_cache
        self.warm_start = info

    # -- constructors --------------------------------------------------------------

    @classmethod
    def paper_machine(
        cls,
        side: int = 16,
        *,
        allocation: Optional[ResourceAllocation] = None,
        layout: str = "home_base",
        **kwargs,
    ) -> "QuantumMachine":
        """The paper's simulated machine: a square grid of logical qubits."""
        return cls(side, side, allocation=allocation, layout=layout, **kwargs)

    # -- descriptions -----------------------------------------------------------------

    @property
    def config(self) -> MachineConfig:
        return MachineConfig(
            width=self.topology.width,
            height=self.topology.height,
            allocation=self.allocation,
            layout_name=self.layout_name,
            num_qubits=self.num_qubits,
            logical_gate_us=self.logical_gate_us,
            protocol=self.protocol,
            topology_kind=self.topology_kind,
        )

    def describe(self) -> str:
        return (
            f"QuantumMachine {self.topology.width}x{self.topology.height} "
            f"{self.topology_kind} "
            f"({self.num_qubits} logical qubits, {self.layout_name} layout, "
            f"{self.allocation.label}, {self.protocol.upper()})"
        )

    def trace_snapshot(
        self, *, workload: str, operations: int, t_us: float = 0.0
    ) -> RunStarted:
        """The typed :class:`~repro.trace.RunStarted` header describing this machine.

        Every trace opens with it, so a golden fixture is self-describing: a
        diff against a fixture recorded on a different machine or workload
        fails on line one instead of deep in the event stream.
        """
        from ..trace.records import machine_record

        return machine_record(self, workload=workload, operations=operations, t_us=t_us)

    # -- fidelity accounting --------------------------------------------------------------

    def load_balancer(self):
        """The configured :class:`~repro.network.routing.LoadBalancer`, or None.

        Transport backends call this once at construction; ``None`` (no
        ``network.routing`` spec section) means every channel takes the
        planner's single deterministic route, bitwise-identical to the
        pre-multi-path behaviour.
        """
        return self._load_balancer

    def fidelity_model(self) -> Optional[ChannelFidelityModel]:
        """The shared per-channel fidelity model, or None when not tracking.

        Transport backends call this once at construction; scenarios switch
        tracking on by carrying a ``noise`` section (see
        :mod:`repro.scenarios.spec`), which sets ``track_fidelity``.
        """
        if not self.track_fidelity:
            return None
        if self._fidelity_model is None:
            from .fidelity import ChannelFidelityModel

            self._fidelity_model = ChannelFidelityModel(self)
        return self._fidelity_model

    # -- flow-model bandwidths ------------------------------------------------------------
    #
    # Bandwidths are expressed in "servers", i.e. how many operations of the
    # corresponding kind can be in service simultaneously; dividing work
    # (server-microseconds) by bandwidth gives time.

    def teleporter_bandwidth_per_direction(self) -> float:
        """Teleporters available to each dimension set of a T' node."""
        return max(self.allocation.teleporters_per_node / 2.0, 0.5)

    def generator_bandwidth_per_link(self) -> float:
        """Generators available on each virtual-wire link.

        ``generator_bandwidth_scale`` models faster or slower ancilla (EPR
        pair) factories than the allocation's integer count — the scenario
        engine sweeps it continuously.
        """
        return float(self.allocation.generators_per_node) * self.generator_bandwidth_scale

    def purifier_bandwidth_per_node(self) -> float:
        """Queue purifiers available at each endpoint P node."""
        return float(self.allocation.purifiers_per_node)

    # -- per-communication work ----------------------------------------------------------

    def pairs_per_logical_communication(self, hops: int) -> float:
        """Raw pairs that must transit a channel of ``hops`` per logical qubit moved."""
        budget = self.planner.budget_for_hops(hops)
        return budget.pairs_teleported * self.encoding.physical_qubits

    def good_pairs_per_logical_communication(self) -> int:
        """Above-threshold pairs needed at the endpoints per logical qubit moved."""
        return self.encoding.physical_qubits

    def detailed_pair_budget(self, hops: int) -> "tuple[int, int]":
        """(purification depth, raw pairs) one channel needs at per-pair granularity.

        The event-driven purifier consumes ``2**depth`` raw pairs per good
        pair (every round succeeds in the deterministic model), and a channel
        must deliver one good pair per physical qubit of the logical operand.
        Both per-pair simulations draw this budget from here.
        """
        depth = max(self.planner.budget_for_hops(hops).endpoint_rounds, 1)
        return depth, self.good_pairs_per_logical_communication() * (2 ** depth)

    def purifier_rounds_per_good_pair(self, hops: int) -> float:
        """Purification rounds executed at an endpoint per good pair produced."""
        budget = self.planner.budget_for_hops(hops)
        rounds = budget.endpoint_rounds
        return float(2 ** rounds - 1) if rounds > 0 else 0.0

    def channel_setup_floor_us(self, hops: int) -> float:
        """Distance-dependent latency floor of a channel (pipeline depth)."""
        budget = self.planner.budget_for_hops(hops)
        return budget.setup_latency_us

    def data_teleport_us(self, hops: int) -> float:
        """Latency of teleporting the data qubits once the channel is up."""
        distance_cells = hops * self.params.cells_per_hop
        return self.params.times.teleport(distance_cells)

    def flow_profile(self, hops: int) -> FlowDemandProfile:
        """Memoized per-distance work quantities for the fluid flow model.

        Building a flow's demand vector only needs these scalars plus the
        path coordinates, so memoizing them turns demand construction into a
        cheap per-node dictionary fill (the EPR budget behind them is the
        expensive part).
        """
        profile = self._flow_profiles.get(hops)
        if profile is None:
            times = self.params.times
            pairs = self.pairs_per_logical_communication(hops)
            good_pairs = self.good_pairs_per_logical_communication()
            swap_time = times.teleport(0.0)
            profile = FlowDemandProfile(
                hops=hops,
                pairs=pairs,
                good_pairs=good_pairs,
                swap_work=pairs * swap_time,
                generator_work=pairs * times.generate,
                purifier_work=good_pairs
                * self.purifier_rounds_per_good_pair(hops)
                * times.purify_round(0.0),
                data_teleport_work=good_pairs * swap_time,
                floor_us=self.channel_setup_floor_us(hops) + self.data_teleport_us(hops),
            )
            self._flow_profiles[hops] = profile
        return profile
