"""The simulated machine: topology + layout + resource allocation + physics.

:class:`QuantumMachine` bundles everything the simulator needs to know about
the hardware: the mesh of T' nodes, the (t, g, p) allocation at each node, the
logical-qubit layout (Home Base or Mobile Qubit), the ion-trap parameters and
the purification policy.  It also exposes the per-resource *bandwidths* the
flow model shares between concurrent channels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.logical import LogicalQubitEncoding, STEANE_LEVEL_2
from ..core.placement import PurificationPlacement, endpoint_only
from ..core.planner import ChannelPlanner
from ..errors import ConfigurationError
from ..network.layout import MachineLayout, build_layout
from ..network.nodes import ResourceAllocation
from ..network.routing import DimensionOrder
from ..network.topology import MeshTopology
from ..physics.parameters import IonTrapParameters


@dataclass(frozen=True)
class MachineConfig:
    """Declarative description of a machine (useful for sweeps and reports)."""

    width: int
    height: int
    allocation: ResourceAllocation
    layout_name: str
    num_qubits: int
    logical_gate_us: float
    protocol: str

    @property
    def label(self) -> str:
        return (
            f"{self.width}x{self.height} {self.layout_name} "
            f"{self.allocation.label}"
        )


class QuantumMachine:
    """A mesh-connected ion-trap machine ready to be simulated."""

    def __init__(
        self,
        width: int,
        height: Optional[int] = None,
        *,
        allocation: Optional[ResourceAllocation] = None,
        layout: str = "home_base",
        num_qubits: Optional[int] = None,
        params: Optional[IonTrapParameters] = None,
        placement: Optional[PurificationPlacement] = None,
        protocol: str = "dejmps",
        encoding: LogicalQubitEncoding = STEANE_LEVEL_2,
        logical_gate_us: float = 300.0,
        routing_order: DimensionOrder = DimensionOrder.XY,
    ) -> None:
        if logical_gate_us < 0:
            raise ConfigurationError(f"logical_gate_us must be non-negative, got {logical_gate_us}")
        height = height or width
        self.allocation = allocation or ResourceAllocation()
        self.params = params or IonTrapParameters.default()
        self.placement = placement or endpoint_only()
        self.encoding = encoding
        self.protocol = protocol
        self.logical_gate_us = logical_gate_us
        self.topology = MeshTopology(width, height, self.allocation, cells_per_hop=self.params.cells_per_hop)
        self.num_qubits = num_qubits or (width * height)
        self.layout: MachineLayout = build_layout(layout, self.topology, self.num_qubits)
        self.layout_name = self.layout.name
        self.planner = ChannelPlanner(
            self.topology,
            self.params,
            placement=self.placement,
            protocol=protocol,
            encoding=encoding,
            order=routing_order,
        )

    # -- constructors --------------------------------------------------------------

    @classmethod
    def paper_machine(
        cls,
        side: int = 16,
        *,
        allocation: Optional[ResourceAllocation] = None,
        layout: str = "home_base",
        **kwargs,
    ) -> "QuantumMachine":
        """The paper's simulated machine: a square grid of logical qubits."""
        return cls(side, side, allocation=allocation, layout=layout, **kwargs)

    # -- descriptions -----------------------------------------------------------------

    @property
    def config(self) -> MachineConfig:
        return MachineConfig(
            width=self.topology.width,
            height=self.topology.height,
            allocation=self.allocation,
            layout_name=self.layout_name,
            num_qubits=self.num_qubits,
            logical_gate_us=self.logical_gate_us,
            protocol=self.protocol,
        )

    def describe(self) -> str:
        return (
            f"QuantumMachine {self.topology.width}x{self.topology.height} "
            f"({self.num_qubits} logical qubits, {self.layout_name} layout, "
            f"{self.allocation.label}, {self.protocol.upper()})"
        )

    # -- flow-model bandwidths ------------------------------------------------------------
    #
    # Bandwidths are expressed in "servers", i.e. how many operations of the
    # corresponding kind can be in service simultaneously; dividing work
    # (server-microseconds) by bandwidth gives time.

    def teleporter_bandwidth_per_direction(self) -> float:
        """Teleporters available to each dimension set of a T' node."""
        return max(self.allocation.teleporters_per_node / 2.0, 0.5)

    def generator_bandwidth_per_link(self) -> float:
        """Generators available on each virtual-wire link."""
        return float(self.allocation.generators_per_node)

    def purifier_bandwidth_per_node(self) -> float:
        """Queue purifiers available at each endpoint P node."""
        return float(self.allocation.purifiers_per_node)

    # -- per-communication work ----------------------------------------------------------

    def pairs_per_logical_communication(self, hops: int) -> float:
        """Raw pairs that must transit a channel of ``hops`` per logical qubit moved."""
        budget = self.planner.budget_for_hops(hops)
        return budget.pairs_teleported * self.encoding.physical_qubits

    def good_pairs_per_logical_communication(self) -> int:
        """Above-threshold pairs needed at the endpoints per logical qubit moved."""
        return self.encoding.physical_qubits

    def purifier_rounds_per_good_pair(self, hops: int) -> float:
        """Purification rounds executed at an endpoint per good pair produced."""
        budget = self.planner.budget_for_hops(hops)
        rounds = budget.endpoint_rounds
        return float(2 ** rounds - 1) if rounds > 0 else 0.0

    def channel_setup_floor_us(self, hops: int) -> float:
        """Distance-dependent latency floor of a channel (pipeline depth)."""
        budget = self.planner.budget_for_hops(hops)
        return budget.setup_latency_us

    def data_teleport_us(self, hops: int) -> float:
        """Latency of teleporting the data qubits once the channel is up."""
        distance_cells = hops * self.params.cells_per_hop
        return self.params.times.teleport(distance_cells)
