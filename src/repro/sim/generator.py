"""G-node simulation process: continuous virtual-wire pair production.

A G node sits on every link between adjacent T' nodes and keeps both ends
supplied with halves of entangled pairs.  The process below produces pairs
with its ``g`` generator units into a bounded buffer (the T' node's incoming
storage); consumers take pairs from the buffer and block when it runs dry,
which is how generator bandwidth shows up as a bottleneck.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from ..errors import ConfigurationError
from ..physics.parameters import IonTrapParameters
from ..trace.records import EprPairGenerated
from .engine import SimulationEngine
from .resources import ServiceCenter


class LinkGenerator:
    """Continuously refills a bounded buffer of link EPR pairs."""

    def __init__(
        self,
        engine: SimulationEngine,
        *,
        generators: int = 1,
        buffer_capacity: int = 4,
        params: Optional[IonTrapParameters] = None,
        prefill: bool = True,
        name: str = "link",
        rate_scale: float = 1.0,
    ) -> None:
        if generators < 1:
            raise ConfigurationError(f"generators must be >= 1, got {generators}")
        if buffer_capacity < 1:
            raise ConfigurationError(f"buffer_capacity must be >= 1, got {buffer_capacity}")
        if rate_scale <= 0:
            raise ConfigurationError(f"rate_scale must be positive, got {rate_scale}")
        self.engine = engine
        self.params = params or IonTrapParameters.default()
        self.buffer_capacity = buffer_capacity
        self.name = name
        # The ancilla-factory bandwidth knob (``generator_bandwidth_scale`` on
        # the machine) models continuously faster or slower pair factories;
        # with an integer unit count, that is a scaled per-pair service time.
        self._generate_us = self.params.times.generate / rate_scale
        self._service = ServiceCenter(engine, generators, name=f"{name}.generators")
        self._available = buffer_capacity if prefill else 0
        self._in_production = 0
        self._waiters: Deque[Callable[[], None]] = deque()
        self._produced = 0
        self._consumed = 0
        self._top_up()

    # -- state --------------------------------------------------------------------

    @property
    def available_pairs(self) -> int:
        return self._available

    @property
    def pairs_produced(self) -> int:
        return self._produced

    @property
    def pairs_consumed(self) -> int:
        return self._consumed

    @property
    def waiting_consumers(self) -> int:
        return len(self._waiters)

    @property
    def service(self) -> ServiceCenter:
        return self._service

    # -- production -----------------------------------------------------------------

    def _top_up(self) -> None:
        """Keep the generator units busy while the buffer (plus debt) has room."""
        demand = self.buffer_capacity + len(self._waiters)
        while self._available + self._in_production < demand:
            self._in_production += 1
            self._service.submit(self._generate_us, self._pair_ready)

    def _pair_ready(self) -> None:
        self._in_production -= 1
        self._produced += 1
        trace = self.engine.trace
        if trace is not None and trace.wants(EprPairGenerated.kind):
            trace.emit(
                EprPairGenerated(t_us=self.engine.now, link=self.name, produced=self._produced)
            )
        if self._waiters:
            consumer = self._waiters.popleft()
            self._consumed += 1
            consumer()
        else:
            self._available += 1
        self._top_up()

    # -- consumption ------------------------------------------------------------------

    def take_pair(self, callback: Callable[[], None]) -> None:
        """Consume one link pair; ``callback`` runs when a pair is available."""
        if self._available > 0:
            self._available -= 1
            self._consumed += 1
            callback()
        else:
            self._waiters.append(callback)
        self._top_up()
