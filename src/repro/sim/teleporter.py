"""T'-node simulation process: the two time-multiplexed teleporter sets.

Each T' node's router (Figure 6) splits its ``t`` teleporters into an X set
and a Y set; qubits passing straight through use the set matching their travel
dimension, turning qubits are ballistically moved between sets.  Incoming
storage is ``t`` cells per link (4t per node), and the paper avoids deadlock
by never multiplexing that storage.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..errors import ConfigurationError, SimulationError
from ..network.geometry import Coordinate
from ..network.nodes import TeleporterSpec
from ..network.router import QuantumRouter
from ..physics.parameters import IonTrapParameters
from ..trace.records import TeleportPerformed
from .engine import SimulationEngine
from .resources import ServiceCenter


def swap_routing(
    previous: Coordinate, node: Coordinate, nxt: Coordinate
) -> "tuple[str, bool]":
    """Which teleporter set a transiting swap uses, and whether it turns.

    A pair extending from ``previous`` through ``node`` toward ``nxt`` is
    serviced by ``node``'s X set when it leaves horizontally and its Y set
    otherwise (the Figure 6 router split); it *turns* — paying the ballistic
    move between the sets — when the incoming and outgoing dimensions differ.
    Both per-pair simulations (the single-channel study and the detailed
    transport backend) route through this one expression, so the physics
    cannot drift between them.
    """
    dimension = "x" if nxt.y == node.y else "y"
    turn = (previous.y == node.y) != (nxt.y == node.y)
    return dimension, turn


class TeleporterNodeSim:
    """Event-level model of one T' node's teleporter sets and storage."""

    def __init__(
        self,
        engine: SimulationEngine,
        position: Coordinate,
        *,
        spec: Optional[TeleporterSpec] = None,
        params: Optional[IonTrapParameters] = None,
        name: Optional[str] = None,
    ) -> None:
        self.engine = engine
        self.position = position
        self.spec = spec or TeleporterSpec()
        self.params = params or IonTrapParameters.default()
        self.router = QuantumRouter(position, self.spec)
        label = name or f"T'{position}"
        self._sets: Dict[str, ServiceCenter] = {
            "x": ServiceCenter(engine, self.router.x_teleporters, name=f"{label}.x"),
            "y": ServiceCenter(engine, self.router.y_teleporters, name=f"{label}.y"),
        }
        self._stored = 0
        self._turns = 0
        self._teleports = 0

    # -- state ----------------------------------------------------------------------

    @property
    def stored_qubits(self) -> int:
        return self._stored

    @property
    def storage_cells(self) -> int:
        return self.router.storage_cells

    @property
    def teleports_performed(self) -> int:
        return self._teleports

    @property
    def turns_performed(self) -> int:
        return self._turns

    def service_for(self, dimension: str) -> ServiceCenter:
        if dimension not in self._sets:
            raise ConfigurationError(f"dimension must be 'x' or 'y', got {dimension!r}")
        return self._sets[dimension]

    def utilisation(self, elapsed_us: float) -> float:
        """Combined utilisation of both teleporter sets."""
        x = self._sets["x"].stats.utilisation(elapsed_us)
        y = self._sets["y"].stats.utilisation(elapsed_us)
        return (x + y) / 2.0

    # -- operations ------------------------------------------------------------------------

    def store_incoming(self) -> None:
        """Hold an incoming qubit in the storage area while its swap completes."""
        if self._stored >= self.storage_cells:
            raise SimulationError(
                f"storage overflow at {self.position}: {self._stored} qubits held, "
                f"capacity {self.storage_cells}"
            )
        self._stored += 1

    def release_storage(self) -> None:
        if self._stored <= 0:
            raise SimulationError(f"storage underflow at {self.position}")
        self._stored -= 1

    def teleport_through(
        self,
        dimension: str,
        done: Callable[[], None],
        *,
        turn: bool = False,
    ) -> None:
        """Perform one chained-teleportation swap through the given set.

        ``turn`` adds the intra-router ballistic move between the X and Y sets
        before the swap is serviced.
        """
        duration = self.params.times.teleport(0.0)
        if turn:
            self._turns += 1
            duration += self.params.times.ballistic(self.router.turn_cells)
        self._teleports += 1
        trace = self.engine.trace
        if trace is not None and trace.wants(TeleportPerformed.kind):
            trace.emit(
                TeleportPerformed(
                    t_us=self.engine.now,
                    node=self.position.as_tuple(),
                    dimension=dimension,
                    turn=turn,
                )
            )
        self.service_for(dimension).submit(duration, done)
