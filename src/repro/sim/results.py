"""Simulation result containers and statistics.

A simulation run produces a :class:`SimulationResult`: the makespan (the
paper's "runtime" metric), per-operation and per-channel records, and
resource utilisation summaries that explain *where* contention arose — the
quantity Figure 16 varies resource allocation to expose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import SimulationError


@dataclass(frozen=True)
class ChannelRecord:
    """One long-distance communication serviced by the network."""

    source: Tuple[int, int]
    destination: Tuple[int, int]
    hops: int
    start_us: float
    end_us: float
    pairs_transited: float
    purpose: str = "operation"
    qubit: Optional[int] = None
    #: Fidelity accounting (None on runs without a noise model): the EPR
    #: fidelity the channel delivered and the endpoint purification tree
    #: depth selected at channel-open time to reach it.
    delivered_fidelity: Optional[float] = None
    purification_level: Optional[int] = None

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


@dataclass(frozen=True)
class OperationRecord:
    """One two-logical-qubit operation, from issue to completion."""

    index: int
    qubit_a: int
    qubit_b: int
    issue_us: float
    complete_us: float
    channel_count: int
    total_hops: int

    @property
    def duration_us(self) -> float:
        return self.complete_us - self.issue_us


@dataclass
class SimulationResult:
    """Outcome of one simulator run."""

    workload_name: str
    machine_description: str
    makespan_us: float
    operations: List[OperationRecord] = field(default_factory=list)
    channels: List[ChannelRecord] = field(default_factory=list)
    resource_utilisation: Dict[str, float] = field(default_factory=dict)
    #: Transport backend that serviced the run (registry name).
    backend: str = "fluid"
    #: Delivered-fidelity target on noise-tracked runs (None otherwise).
    target_fidelity: Optional[float] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    # -- headline numbers -----------------------------------------------------

    @property
    def operation_count(self) -> int:
        return len(self.operations)

    @property
    def channel_count(self) -> int:
        return len(self.channels)

    def normalised_to(self, baseline: "SimulationResult") -> float:
        """Makespan relative to a baseline run (Figure 16's y-axis)."""
        if baseline.makespan_us <= 0:
            raise SimulationError("baseline makespan must be positive")
        return self.makespan_us / baseline.makespan_us

    # -- channel statistics ------------------------------------------------------

    def average_channel_hops(self) -> float:
        if not self.channels:
            return 0.0
        return sum(c.hops for c in self.channels) / len(self.channels)

    def average_channel_duration_us(self) -> float:
        if not self.channels:
            return 0.0
        return sum(c.duration_us for c in self.channels) / len(self.channels)

    def total_pairs_transited(self) -> float:
        return sum(c.pairs_transited for c in self.channels)

    def max_concurrent_channels(self) -> int:
        """Peak number of simultaneously active channels."""
        events = []
        for channel in self.channels:
            events.append((channel.start_us, 1))
            events.append((channel.end_us, -1))
        events.sort()
        active = peak = 0
        for _, delta in events:
            active += delta
            peak = max(peak, active)
        return peak

    # -- fidelity statistics ---------------------------------------------------------

    def delivered_fidelities(self) -> List[float]:
        """Per-channel delivered fidelities, in completion order (may be empty)."""
        return [
            c.delivered_fidelity for c in self.channels if c.delivered_fidelity is not None
        ]

    def fidelity_summary(self) -> Optional[Dict[str, object]]:
        """Flat JSON-safe fidelity summary, or None when fidelity was not tracked.

        ``below_target`` counts channels whose delivered fidelity misses the
        run's target — the quantity that decides whether the interconnect is
        usable at all, regardless of its bandwidth.
        """
        values = self.delivered_fidelities()
        if not values:
            return None
        target = self.target_fidelity
        summary: Dict[str, object] = {
            "channels": len(values),
            "mean": sum(values) / len(values),
            "min": min(values),
            "max": max(values),
        }
        if target is not None:
            summary["target"] = target
            summary["below_target"] = sum(1 for v in values if v < target)
        return summary

    # -- operation statistics -------------------------------------------------------

    def average_operation_duration_us(self) -> float:
        if not self.operations:
            return 0.0
        return sum(o.duration_us for o in self.operations) / len(self.operations)

    def critical_operation(self) -> Optional[OperationRecord]:
        """The operation that finished last (ends the makespan)."""
        if not self.operations:
            return None
        return max(self.operations, key=lambda op: op.complete_us)

    # -- reporting ---------------------------------------------------------------------

    def bottleneck_resource(self) -> Optional[str]:
        """The resource class with the highest utilisation, if tracked."""
        if not self.resource_utilisation:
            return None
        return max(self.resource_utilisation, key=self.resource_utilisation.get)

    def describe(self) -> str:
        lines = [
            f"SimulationResult for {self.workload_name!r} on {self.machine_description}",
            f"  makespan            : {self.makespan_us:.1f} us",
            f"  operations          : {self.operation_count}",
            f"  channels            : {self.channel_count}"
            f" (avg {self.average_channel_hops():.2f} hops,"
            f" avg {self.average_channel_duration_us():.1f} us)",
            f"  pairs transited     : {self.total_pairs_transited():.3g}",
            f"  peak concurrency    : {self.max_concurrent_channels()} channels",
        ]
        fidelity = self.fidelity_summary()
        if fidelity is not None:
            line = (
                f"  delivered fidelity  : mean {fidelity['mean']:.6f}, "
                f"min {fidelity['min']:.6f} over {fidelity['channels']} channels"
            )
            if "target" in fidelity:
                line += f" (target {fidelity['target']:.6f}, {fidelity['below_target']} below)"
            lines.append(line)
        if self.resource_utilisation:
            lines.append("  resource utilisation:")
            for name, value in sorted(self.resource_utilisation.items()):
                lines.append(f"    {name:20s}: {value:6.1%}")
        return "\n".join(lines)
