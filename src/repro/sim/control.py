"""High-level classical control unit (paper Section 3.2, "Route Planning").

The control unit sits between the scheduler and the transport backends: it
translates a two-logical-qubit operation into the long-distance communications
the machine layout requires, plans each one on the mesh (path, seed generator,
budget) and produces the classical messages that will accompany the EPR
qubits.  It tracks logical qubit positions through the layout object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.planner import ChannelPlan
from ..network.layout import CommRequest
from ..network.messages import ClassicalMessage
from ..workloads.instructions import TwoQubitOp
from .machine import QuantumMachine


@dataclass(frozen=True)
class PlannedCommunication:
    """A communication request together with its channel plan."""

    request: CommRequest
    plan: Optional[ChannelPlan]

    @property
    def is_local(self) -> bool:
        return self.plan is None

    @property
    def hops(self) -> int:
        return 0 if self.plan is None else self.plan.hops


class ControlUnit:
    """Translates operations into planned communications on a machine."""

    def __init__(self, machine: QuantumMachine) -> None:
        self.machine = machine
        self._message_log: List[ClassicalMessage] = []

    def reset(self) -> None:
        """Reset logical qubit positions (start of a new program)."""
        self.machine.layout.reset()
        self._message_log.clear()

    def plan_operation(self, op: TwoQubitOp) -> List[PlannedCommunication]:
        """Plan every long-distance communication an operation requires.

        The layout decides *which* movements are needed (visit/return for Home
        Base, walk/return-home for Mobile Qubit); the planner decides *how*
        each one is routed and what it will cost.
        """
        requests = self.machine.layout.communications_for(op.qubit_a, op.qubit_b)
        planned: List[PlannedCommunication] = []
        for request in requests:
            if request.is_local:
                planned.append(PlannedCommunication(request=request, plan=None))
                continue
            plan = self.machine.planner.plan(request.source, request.dest)
            planned.append(PlannedCommunication(request=request, plan=plan))
        return planned

    def issue_messages(self, planned: PlannedCommunication) -> List[ClassicalMessage]:
        """Create the ID packets that accompany a communication's EPR qubits.

        One message per good pair that must reach the endpoints; the message
        count is what the classical-network bandwidth estimate is based on.
        """
        if planned.plan is None:
            return []
        good_pairs = self.machine.good_pairs_per_logical_communication()
        messages = [
            ClassicalMessage(
                destination=planned.request.dest.as_tuple(),
                partner_destination=planned.request.source.as_tuple(),
            )
            for _ in range(good_pairs)
        ]
        self._message_log.extend(messages)
        return messages

    @property
    def messages_issued(self) -> int:
        """Total ID packets issued since the last reset."""
        return len(self._message_log)
