"""Logical instruction scheduler (paper Sections 3.2 and 5).

The scheduler consumes an :class:`~repro.workloads.instructions.InstructionStream`
and issues operations as early as possible while maintaining per-qubit program
order: an operation becomes *ready* once every earlier operation touching one
of its logical qubits has completed.  The simulator asks the scheduler which
operations are ready, issues them, and reports completions back.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..errors import SchedulingError
from ..workloads.instructions import InstructionStream, TwoQubitOp


class InstructionScheduler:
    """Dependency-tracking issue logic over an instruction stream."""

    def __init__(self, stream: InstructionStream) -> None:
        self.stream = stream
        self._deps: Dict[int, Set[int]] = stream.dependencies()
        self._dependents: Dict[int, Set[int]] = stream.dependents()
        self._remaining_deps: Dict[int, int] = {
            index: len(deps) for index, deps in self._deps.items()
        }
        self._ready: List[int] = [
            op.index for op in stream.operations if self._remaining_deps[op.index] == 0
        ]
        self._issued: Set[int] = set()
        self._completed: Set[int] = set()
        self._ops_by_index: Dict[int, TwoQubitOp] = {
            op.index: op for op in stream.operations
        }

    # -- state ---------------------------------------------------------------------

    @property
    def total_operations(self) -> int:
        return len(self._ops_by_index)

    @property
    def issued_count(self) -> int:
        return len(self._issued)

    @property
    def completed_count(self) -> int:
        return len(self._completed)

    @property
    def finished(self) -> bool:
        """True once every operation has completed."""
        return len(self._completed) == self.total_operations

    def operation(self, index: int) -> TwoQubitOp:
        return self._ops_by_index[index]

    # -- issue / complete -------------------------------------------------------------

    def ready_operations(self) -> List[TwoQubitOp]:
        """Operations whose dependencies are satisfied and that are not yet issued.

        Returned in program order, which keeps the simulation deterministic.
        """
        return [self._ops_by_index[i] for i in sorted(self._ready)]

    def mark_issued(self, index: int) -> None:
        if index not in self._ready:
            raise SchedulingError(f"operation {index} is not ready to issue")
        self._ready.remove(index)
        self._issued.add(index)

    def mark_completed(self, index: int) -> List[TwoQubitOp]:
        """Record a completion; returns operations that have just become ready."""
        if index not in self._issued:
            raise SchedulingError(f"operation {index} completed without being issued")
        if index in self._completed:
            raise SchedulingError(f"operation {index} completed twice")
        self._completed.add(index)
        newly_ready: List[TwoQubitOp] = []
        for dependent in sorted(self._dependents[index]):
            self._remaining_deps[dependent] -= 1
            if self._remaining_deps[dependent] == 0:
                self._ready.append(dependent)
                newly_ready.append(self._ops_by_index[dependent])
        return newly_ready

    # -- sanity ---------------------------------------------------------------------------

    def assert_consistent(self) -> None:
        """Raise if the internal bookkeeping is inconsistent (used in tests)."""
        if self._issued & set(self._ready):
            raise SchedulingError("an operation is both issued and ready")
        if not self._completed <= self._issued:
            raise SchedulingError("an operation completed without being issued")
        for index, remaining in self._remaining_deps.items():
            if remaining < 0:
                raise SchedulingError(f"operation {index} has negative pending dependencies")
