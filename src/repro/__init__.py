"""repro: Interconnection Networks for Scalable Quantum Computers (ISCA 2006).

A reproduction of Isailovic, Patel, Whitney and Kubiatowicz's study of EPR-pair
distribution networks for ion-trap quantum computers.  The package is layered:

* :mod:`repro.physics` — ion-trap fidelity/timing models, purification protocols.
* :mod:`repro.core` — reliable quantum channels: distribution methodologies,
  purification placement, EPR budgets, the latency crossover and channel planning.
* :mod:`repro.network` — the mesh of teleporter nodes, dimension-order routing,
  the router micro-architecture and machine layouts.
* :mod:`repro.sim` — the event-driven communication simulator.
* :mod:`repro.workloads` — QFT / Shor-kernel instruction streams.
* :mod:`repro.analysis` — regeneration of every table and figure in the paper.
* :mod:`repro.service` — open-loop traffic generation, admission control and
  request scheduling: the machine as a multi-tenant EPR-distribution service.
* :mod:`repro.runtime` — parallel experiment runner, on-disk result cache and
  the ``python -m repro`` command-line entry point.
* :mod:`repro.api` — the **stable public facade**: ``load_scenario``, ``run``,
  ``serve`` and ``sweep``.  External code should import from here; everything
  deeper is internal and rearranged freely between releases.

Quickstart::

    from repro import api

    result = api.run(api.load_scenario("smoke"))
    print(result.mode, result.makespan_us)
"""

from .errors import (
    ConfigurationError,
    FidelityError,
    InfeasibleError,
    ReproError,
    RoutingError,
    SchedulingError,
    SimulationError,
)
from .physics import (
    BellDiagonalState,
    ErrorRates,
    IonTrapParameters,
    OperationTimes,
    THRESHOLD_ERROR,
    THRESHOLD_FIDELITY,
    get_protocol,
)
from .core import (
    ChannelBudget,
    ChannelPlanner,
    ChannelReport,
    EPRBudgetModel,
    PurificationPlacement,
    QuantumChannel,
    STEANE_LEVEL_2,
    between_teleports,
    crossover_distance_cells,
    endpoint_only,
    pairs_per_logical_communication,
    standard_schemes,
    virtual_wire,
)
from .network import (
    Coordinate,
    HomeBaseLayout,
    MeshTopology,
    MobileQubitLayout,
    ResourceAllocation,
    dimension_order_route,
)
from .sim import CommunicationSimulator, QuantumMachine, SimulationResult
from .workloads import (
    InstructionStream,
    modular_exponentiation_stream,
    modular_multiplication_stream,
    qft_stream,
    shor_stream,
)

__version__ = "1.0.0"

__all__ = [
    "BellDiagonalState",
    "ChannelBudget",
    "ChannelPlanner",
    "ChannelReport",
    "CommunicationSimulator",
    "ConfigurationError",
    "Coordinate",
    "EPRBudgetModel",
    "ErrorRates",
    "FidelityError",
    "HomeBaseLayout",
    "InfeasibleError",
    "InstructionStream",
    "IonTrapParameters",
    "MeshTopology",
    "MobileQubitLayout",
    "OperationTimes",
    "PurificationPlacement",
    "QuantumChannel",
    "QuantumMachine",
    "ReproError",
    "ResourceAllocation",
    "RoutingError",
    "STEANE_LEVEL_2",
    "SchedulingError",
    "SimulationError",
    "SimulationResult",
    "THRESHOLD_ERROR",
    "THRESHOLD_FIDELITY",
    "between_teleports",
    "crossover_distance_cells",
    "dimension_order_route",
    "endpoint_only",
    "get_protocol",
    "modular_exponentiation_stream",
    "modular_multiplication_stream",
    "pairs_per_logical_communication",
    "qft_stream",
    "shor_stream",
    "standard_schemes",
    "virtual_wire",
    "__version__",
]
