"""Quantum Fourier Transform communication pattern (paper Section 5.2).

Given ``n`` logical qubits labelled 1..n, every logical qubit interacts once
with every other, in numerical order: qubit 1 with 2, 3, ..., n; qubit 2 with
3, 4, ..., n; and so on.  With the per-qubit program-order dependency rule the
earliest-start schedule is the wavefront listing in the paper:
1-2, 1-3, (1-4, 2-3), (1-5, 2-4), (1-6, 2-5, 3-4), ...

The stream below lists operations grouped by wavefront (pairs with equal
``i + j`` together), which is also a valid sequential program order.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import SchedulingError
from .instructions import InstructionStream


def qft_pairs(num_qubits: int) -> List[Tuple[int, int]]:
    """All (i, j) interaction pairs of an ``num_qubits``-qubit QFT, in program order."""
    if num_qubits < 2:
        raise SchedulingError(f"QFT needs at least 2 logical qubits, got {num_qubits}")
    pairs = [(i, j) for i in range(1, num_qubits + 1) for j in range(i + 1, num_qubits + 1)]
    # Order by wavefront (i + j), then by the lower qubit index, which matches
    # the paper's listing and keeps the per-qubit order i < j increasing.
    pairs.sort(key=lambda pair: (pair[0] + pair[1], pair[0]))
    return pairs


def qft_stream(num_qubits: int) -> InstructionStream:
    """The all-to-all QFT instruction stream on ``num_qubits`` logical qubits."""
    return InstructionStream.from_pairs(
        name=f"qft_{num_qubits}", num_qubits=num_qubits, pairs=qft_pairs(num_qubits)
    )


def qft_operation_count(num_qubits: int) -> int:
    """Number of two-qubit operations in an ``num_qubits``-qubit QFT."""
    if num_qubits < 2:
        raise SchedulingError(f"QFT needs at least 2 logical qubits, got {num_qubits}")
    return num_qubits * (num_qubits - 1) // 2
