"""Modular Multiplication communication pattern (paper Section 5.2).

MM has a bipartite pattern: every logical qubit of one register communicates
with every logical qubit of the other register.  We interleave the pairs so
that consecutive operations touch different qubits, which maximises the
parallelism available to the scheduler (mirroring how the arithmetic circuit
overlaps independent partial products).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import SchedulingError
from .instructions import InstructionStream


def bipartite_pairs(
    set_a: Sequence[int], set_b: Sequence[int]
) -> List[Tuple[int, int]]:
    """All cross pairs between two disjoint qubit sets, diagonally interleaved."""
    if not set_a or not set_b:
        raise SchedulingError("both qubit sets must be non-empty")
    if set(set_a) & set(set_b):
        raise SchedulingError("the two qubit sets must be disjoint")
    pairs: List[Tuple[int, int]] = []
    len_a, len_b = len(set_a), len(set_b)
    # Diagonal (round-robin) ordering: on step s, pair a[i] with b[(i + s) % len_b].
    for step in range(len_b):
        for i in range(len_a):
            pairs.append((set_a[i], set_b[(i + step) % len_b]))
    return pairs


def modular_multiplication_stream(
    num_qubits: int, *, split: float = 0.5
) -> InstructionStream:
    """Bipartite MM stream over ``num_qubits`` logical qubits.

    The first ``round(split * num_qubits)`` qubits form one register and the
    rest the other.
    """
    if num_qubits < 2:
        raise SchedulingError(f"MM needs at least 2 logical qubits, got {num_qubits}")
    size_a = max(1, min(num_qubits - 1, round(split * num_qubits)))
    set_a = list(range(1, size_a + 1))
    set_b = list(range(size_a + 1, num_qubits + 1))
    return InstructionStream.from_pairs(
        name=f"modmult_{num_qubits}",
        num_qubits=num_qubits,
        pairs=bipartite_pairs(set_a, set_b),
    )
