"""Shor's factorisation algorithm kernels (paper Section 5.2).

Shor's algorithm, as seen by the interconnect, is three communication
kernels: a QFT over one register, Modular Exponentiation over the other, and
Modular Multiplication between the two.  The paper concentrates on the QFT
(all-to-all) pattern because it recurs in many algorithms; this module exposes
the kernels both individually and composed.
"""

from __future__ import annotations

from typing import Dict

from ..errors import SchedulingError
from .instructions import InstructionStream
from .modexp import modular_exponentiation_stream
from .modmult import modular_multiplication_stream
from .qft import qft_stream


def shor_kernel_streams(num_qubits: int, *, modexp_steps: int = 1) -> Dict[str, InstructionStream]:
    """The three Shor kernels as separate streams over ``num_qubits`` qubits."""
    if num_qubits < 4:
        raise SchedulingError(f"Shor kernels need at least 4 logical qubits, got {num_qubits}")
    return {
        "qft": qft_stream(num_qubits),
        "modexp": modular_exponentiation_stream(num_qubits, steps=modexp_steps),
        "modmult": modular_multiplication_stream(num_qubits),
    }


def shor_stream(num_qubits: int, *, modexp_steps: int = 1) -> InstructionStream:
    """A single composed stream: ME, then MM, then the QFT.

    This mirrors the structure of one iteration of the quantum part of Shor's
    algorithm: modular exponentiation builds the periodic state, the results
    registers interact, and the QFT extracts the period.
    """
    kernels = shor_kernel_streams(num_qubits, modexp_steps=modexp_steps)
    composed = kernels["modexp"].extended(kernels["modmult"])
    composed = composed.extended(kernels["qft"], name=f"shor_{num_qubits}")
    return composed
