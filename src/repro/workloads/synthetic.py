"""Synthetic traffic patterns for ablations and stress tests.

These are not from the paper's evaluation, but they are the standard patterns
used to characterise classical interconnects (uniform random, permutation,
nearest neighbour) and are useful for exercising the simulator beyond the QFT.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import SchedulingError
from .instructions import InstructionStream
from .qft import qft_pairs
from .rng import substream_rng


def all_to_all_stream(num_qubits: int) -> InstructionStream:
    """Every unordered pair exactly once (same pair set as the QFT)."""
    return InstructionStream.from_pairs(
        name=f"all_to_all_{num_qubits}", num_qubits=num_qubits, pairs=qft_pairs(num_qubits)
    )


def nearest_neighbour_stream(num_qubits: int, rounds: int = 1) -> InstructionStream:
    """Each qubit talks to its successor, repeated ``rounds`` times.

    Alternates odd and even pairings so each round is two fully parallel
    wavefronts (the brick-wall pattern of nearest-neighbour circuits).
    """
    if num_qubits < 2:
        raise SchedulingError(f"need at least 2 qubits, got {num_qubits}")
    if rounds < 1:
        raise SchedulingError(f"rounds must be >= 1, got {rounds}")
    pairs: List[Tuple[int, int]] = []
    for _ in range(rounds):
        pairs.extend((i, i + 1) for i in range(1, num_qubits, 2))
        pairs.extend((i, i + 1) for i in range(2, num_qubits, 2))
    return InstructionStream.from_pairs(
        name=f"nearest_neighbour_{num_qubits}_x{rounds}", num_qubits=num_qubits, pairs=pairs
    )


def permutation_stream(num_qubits: int, *, seed: Optional[int] = 0) -> InstructionStream:
    """A random perfect matching: each qubit communicates exactly once.

    Randomness comes from the ``permutation`` substream of the workload RNG
    service, so the same ``(num_qubits, seed)`` yields the same matching in
    every process (a ``None`` seed means 0, never OS entropy).
    """
    if num_qubits < 2:
        raise SchedulingError(f"need at least 2 qubits, got {num_qubits}")
    rng = substream_rng("permutation", num_qubits, seed=seed)
    qubits = list(range(1, num_qubits + 1))
    rng.shuffle(qubits)
    if len(qubits) % 2 == 1:
        qubits = qubits[:-1]
    pairs = [(qubits[i], qubits[i + 1]) for i in range(0, len(qubits), 2)]
    return InstructionStream.from_pairs(
        name=f"permutation_{num_qubits}", num_qubits=num_qubits, pairs=pairs
    )


def random_stream(
    num_qubits: int, num_operations: int, *, seed: Optional[int] = 0
) -> InstructionStream:
    """Uniform random pairs (with per-qubit dependencies arising naturally).

    Draws from the ``random`` substream of the workload RNG service — same
    spec, same stream, in any process.
    """
    if num_qubits < 2:
        raise SchedulingError(f"need at least 2 qubits, got {num_qubits}")
    if num_operations < 1:
        raise SchedulingError(f"num_operations must be >= 1, got {num_operations}")
    rng = substream_rng("random", num_qubits, num_operations, seed=seed)
    pairs: List[Tuple[int, int]] = []
    for _ in range(num_operations):
        a = rng.randint(1, num_qubits)
        b = rng.randint(1, num_qubits - 1)
        if b >= a:
            b += 1
        pairs.append((a, b))
    return InstructionStream.from_pairs(
        name=f"random_{num_qubits}_{num_operations}", num_qubits=num_qubits, pairs=pairs
    )
