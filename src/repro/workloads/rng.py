"""Named-substream RNG service for stochastic workload generators.

Every stochastic generator in this package draws from a substream addressed
by ``(generator name, parameters..., seed)``, derived by hashing the address
with SHA-256.  That gives three properties ``random.Random(seed)`` alone
does not:

* **Process independence** — the derivation never touches Python's
  randomized ``hash()`` or any global RNG state, so the same spec produces
  the same instruction stream (and therefore the same simulation trace) in
  the parent process, in every pool worker, and across machines.
* **Stream isolation** — two generators given the same seed (say
  ``permutation(seed=7)`` and ``random(seed=7)``) draw from unrelated
  substreams instead of replaying each other's sequence.
* **Explicit determinism** — a ``None`` seed is normalised to 0 rather than
  falling back to OS entropy, so no catalog or spec-file scenario can be
  accidentally irreproducible; genuinely fresh randomness must be asked for
  with an explicit seed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional, Union

_SEED_BYTES = 8


def substream_seed(name: str, *parts: Union[int, str], seed: Optional[int] = 0) -> int:
    """Deterministic 64-bit seed for the substream ``(name, *parts, seed)``."""
    digest = hashlib.sha256()
    digest.update(name.encode("utf-8"))
    for part in parts:
        digest.update(b"\x1f")
        digest.update(str(part).encode("utf-8"))
    digest.update(b"\x1f")
    digest.update(str(0 if seed is None else int(seed)).encode("utf-8"))
    return int.from_bytes(digest.digest()[:_SEED_BYTES], "big")


def substream_rng(name: str, *parts: Union[int, str], seed: Optional[int] = 0) -> random.Random:
    """A :class:`random.Random` seeded from the named substream."""
    # lint-ok: DET001 -- this *is* the sanctioned substream service: the Random is
    # seeded from the SHA-256 digest above, never from process entropy
    return random.Random(substream_seed(name, *parts, seed=seed))
