"""Modular Exponentiation communication pattern (paper Section 5.2).

ME alternates *squaring* steps, which require all-to-all communication within
one register, and *multiplication* steps, which are bipartite between the two
registers.  The number of alternations is configurable; the paper treats ME as
a mix of its two benchmark patterns, which is exactly what this generator
produces.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import SchedulingError
from .instructions import InstructionStream
from .modmult import bipartite_pairs
from .qft import qft_pairs


def modular_exponentiation_stream(
    num_qubits: int, *, steps: int = 2, split: float = 0.5
) -> InstructionStream:
    """ME stream: ``steps`` alternations of squaring and multiplication phases.

    The register is split into two halves; squaring is all-to-all within the
    first half, multiplication is bipartite between the halves.
    """
    if num_qubits < 4:
        raise SchedulingError(f"ME needs at least 4 logical qubits, got {num_qubits}")
    if steps < 1:
        raise SchedulingError(f"steps must be >= 1, got {steps}")
    size_a = max(2, min(num_qubits - 1, round(split * num_qubits)))
    set_a = list(range(1, size_a + 1))
    set_b = list(range(size_a + 1, num_qubits + 1))
    if not set_b:
        raise SchedulingError("the multiplication register is empty; reduce split")

    pairs: List[Tuple[int, int]] = []
    # All-to-all pairs within register A, relabelled to A's qubit numbers.
    squaring = [(set_a[i - 1], set_a[j - 1]) for i, j in qft_pairs(len(set_a))]
    multiplication = bipartite_pairs(set_a, set_b)
    for _ in range(steps):
        pairs.extend(squaring)
        pairs.extend(multiplication)
    return InstructionStream.from_pairs(
        name=f"modexp_{num_qubits}_x{steps}", num_qubits=num_qubits, pairs=pairs
    )
