"""Communication workloads: instruction streams for the simulator.

The paper studies Shor's factorisation algorithm through its three
communication-intensive kernels: the Quantum Fourier Transform (all-to-all),
Modular Multiplication (bipartite) and Modular Exponentiation (alternating
squaring and multiplication phases).  Each generator here produces an
:class:`~repro.workloads.instructions.InstructionStream` of two-logical-qubit
operations with the dependency structure the paper's scheduler respects.
"""

from .instructions import InstructionStream, TwoQubitOp
from .qft import qft_stream
from .modmult import modular_multiplication_stream
from .modexp import modular_exponentiation_stream
from .shor import shor_kernel_streams, shor_stream
from .synthetic import (
    all_to_all_stream,
    nearest_neighbour_stream,
    permutation_stream,
    random_stream,
)

__all__ = [
    "InstructionStream",
    "TwoQubitOp",
    "all_to_all_stream",
    "modular_exponentiation_stream",
    "modular_multiplication_stream",
    "nearest_neighbour_stream",
    "permutation_stream",
    "qft_stream",
    "random_stream",
    "shor_kernel_streams",
    "shor_stream",
]
