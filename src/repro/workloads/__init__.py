"""Communication workloads: instruction streams for the simulator.

The paper studies Shor's factorisation algorithm through its three
communication-intensive kernels: the Quantum Fourier Transform (all-to-all),
Modular Multiplication (bipartite) and Modular Exponentiation (alternating
squaring and multiplication phases).  Each generator here produces an
:class:`~repro.workloads.instructions.InstructionStream` of two-logical-qubit
operations with the dependency structure the paper's scheduler respects.
"""

from .instructions import InstructionStream, TwoQubitOp
from .qft import qft_stream
from .registry import build_workload, list_workloads, register_workload, workload_params
from .modmult import modular_multiplication_stream
from .modexp import modular_exponentiation_stream
from .shor import shor_kernel_streams, shor_stream
from .synthetic import (
    all_to_all_stream,
    nearest_neighbour_stream,
    permutation_stream,
    random_stream,
)

__all__ = [
    "InstructionStream",
    "TwoQubitOp",
    "all_to_all_stream",
    "build_workload",
    "list_workloads",
    "modular_exponentiation_stream",
    "modular_multiplication_stream",
    "nearest_neighbour_stream",
    "permutation_stream",
    "qft_stream",
    "random_stream",
    "register_workload",
    "shor_kernel_streams",
    "shor_stream",
    "workload_params",
]
