"""Named workload builders, parameterizable from declarative specs.

The scenario engine requests instruction streams by name with a parameter
mapping, so every generator in this package is wrapped in a registry entry
that documents which parameters it takes and validates them before calling
through.  Unknown workload names and unknown or malformed parameters raise
:class:`~repro.errors.ConfigurationError` with the registry's vocabulary in
the message, which is what makes scenario files debuggable.

New workloads register themselves with :func:`register_workload`::

    @register_workload("my_pattern", params=("rounds",))
    def _build_my_pattern(num_qubits, *, rounds=1):
        return InstructionStream...
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..errors import ConfigurationError, ReproError
from .instructions import InstructionStream
from .modexp import modular_exponentiation_stream
from .modmult import modular_multiplication_stream
from .qft import qft_stream
from .shor import shor_stream
from .synthetic import (
    all_to_all_stream,
    nearest_neighbour_stream,
    permutation_stream,
    random_stream,
)

#: A builder maps (num_qubits, **params) to an instruction stream.
WorkloadBuilder = Callable[..., InstructionStream]


class _WorkloadEntry:
    """One registered workload: its builder plus the parameters it accepts."""

    def __init__(self, name: str, builder: WorkloadBuilder, params: Tuple[str, ...]) -> None:
        self.name = name
        self.builder = builder
        self.params = params


_REGISTRY: Dict[str, _WorkloadEntry] = {}


def register_workload(
    name: str, *, params: Tuple[str, ...] = ()
) -> Callable[[WorkloadBuilder], WorkloadBuilder]:
    """Decorator adding a builder to the workload registry.

    ``params`` names the optional keyword parameters the builder accepts
    beyond ``num_qubits``; anything else in a spec is rejected up front.
    """
    key = name.strip().lower()
    if not key:
        raise ConfigurationError("a workload builder needs a non-empty name")

    def _register(builder: WorkloadBuilder) -> WorkloadBuilder:
        if key in _REGISTRY:
            raise ConfigurationError(f"workload builder {key!r} is already registered")
        _REGISTRY[key] = _WorkloadEntry(key, builder, tuple(params))
        return builder

    return _register


def list_workloads() -> List[str]:
    """Registered workload names, sorted."""
    return sorted(_REGISTRY)


def workload_params(kind: str) -> Tuple[str, ...]:
    """The optional parameter names a workload accepts."""
    return _entry(kind).params


def _entry(kind: str) -> _WorkloadEntry:
    key = (kind or "").strip().lower()
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown workload kind {kind!r}; known: {list_workloads()}"
        )
    return _REGISTRY[key]


def build_workload(
    kind: str, num_qubits: int, params: Optional[Mapping[str, Any]] = None
) -> InstructionStream:
    """Build an instruction stream by registry name.

    ``params`` holds the workload's optional keyword parameters (e.g.
    ``{"rounds": 3}`` for ``nearest_neighbour``); unknown keys are rejected
    before the builder runs.
    """
    entry = _entry(kind)
    params = dict(params or {})
    unknown = sorted(set(params) - set(entry.params))
    if unknown:
        raise ConfigurationError(
            f"workload {entry.name!r} does not take parameters {unknown}; "
            f"accepted: {sorted(entry.params) or 'none'}"
        )
    try:
        return entry.builder(num_qubits, **params)
    except ReproError:
        raise
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"workload {entry.name!r} rejected parameters {params}: {exc}"
        ) from exc


@register_workload("qft")
def _build_qft(num_qubits: int) -> InstructionStream:
    """Quantum Fourier Transform: all-to-all with the QFT dependency chain."""
    return qft_stream(num_qubits)


@register_workload("all_to_all")
def _build_all_to_all(num_qubits: int) -> InstructionStream:
    """Every unordered pair once (the QFT's pair set, no QFT ordering)."""
    return all_to_all_stream(num_qubits)


@register_workload("nearest_neighbour", params=("rounds",))
def _build_nearest_neighbour(num_qubits: int, *, rounds: int = 1) -> InstructionStream:
    """Brick-wall nearest-neighbour rounds."""
    return nearest_neighbour_stream(num_qubits, rounds=rounds)


@register_workload("permutation", params=("seed",))
def _build_permutation(num_qubits: int, *, seed: int = 0) -> InstructionStream:
    """A random perfect matching (maximum concurrent contention)."""
    return permutation_stream(num_qubits, seed=seed)


@register_workload("random", params=("num_operations", "seed"))
def _build_random(
    num_qubits: int, *, num_operations: Optional[int] = None, seed: int = 0
) -> InstructionStream:
    """Uniform random pairs; defaults to one operation per qubit."""
    return random_stream(num_qubits, num_operations or num_qubits, seed=seed)


@register_workload("modmult", params=("split",))
def _build_modmult(num_qubits: int, *, split: float = 0.5) -> InstructionStream:
    """Bipartite modular multiplication."""
    return modular_multiplication_stream(num_qubits, split=split)


@register_workload("modexp", params=("steps", "split"))
def _build_modexp(
    num_qubits: int, *, steps: int = 2, split: float = 0.5
) -> InstructionStream:
    """Modular exponentiation: alternating squaring and multiplication."""
    return modular_exponentiation_stream(num_qubits, steps=steps, split=split)


@register_workload("shor", params=("modexp_steps",))
def _build_shor(num_qubits: int, *, modexp_steps: int = 1) -> InstructionStream:
    """Shor's three communication kernels concatenated."""
    return shor_stream(num_qubits, modexp_steps=modexp_steps)
