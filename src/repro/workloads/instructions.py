"""Instruction streams of two-logical-qubit operations.

A quantum program, as seen by the communication infrastructure, is a sequence
of two-logical-qubit operations (one-qubit gates never leave a functional unit
and are invisible to the network).  The scheduler executes operations as early
as possible while preserving *program order per logical qubit*: an operation
may start once every earlier operation touching either of its operands has
completed.  That dependency rule reproduces exactly the QFT wavefront schedule
listed in the paper (1-2, 1-3, (1-4, 2-3), (1-5, 2-4), ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from ..errors import SchedulingError


@dataclass(frozen=True)
class TwoQubitOp:
    """One two-logical-qubit operation in program order."""

    index: int
    qubit_a: int
    qubit_b: int

    def __post_init__(self) -> None:
        if self.qubit_a == self.qubit_b:
            raise SchedulingError(
                f"operation {self.index} touches qubit {self.qubit_a} twice"
            )
        if self.qubit_a < 1 or self.qubit_b < 1:
            raise SchedulingError("logical qubit indices are 1-based and must be >= 1")

    @property
    def qubits(self) -> Tuple[int, int]:
        return (self.qubit_a, self.qubit_b)

    def touches(self, qubit: int) -> bool:
        return qubit == self.qubit_a or qubit == self.qubit_b


@dataclass
class InstructionStream:
    """An ordered list of two-qubit operations over ``num_qubits`` logical qubits."""

    name: str
    num_qubits: int
    operations: List[TwoQubitOp] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_qubits < 2:
            raise SchedulingError(f"num_qubits must be >= 2, got {self.num_qubits}")
        for op in self.operations:
            self._validate_op(op)

    def _validate_op(self, op: TwoQubitOp) -> None:
        for qubit in op.qubits:
            if qubit > self.num_qubits:
                raise SchedulingError(
                    f"operation {op.index} touches qubit {qubit} but the stream "
                    f"has only {self.num_qubits} logical qubits"
                )

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_pairs(
        cls, name: str, num_qubits: int, pairs: Sequence[Tuple[int, int]]
    ) -> "InstructionStream":
        """Build a stream from (qubit_a, qubit_b) tuples in program order."""
        ops = [TwoQubitOp(i, a, b) for i, (a, b) in enumerate(pairs)]
        return cls(name=name, num_qubits=num_qubits, operations=ops)

    def extended(self, other: "InstructionStream", name: str | None = None) -> "InstructionStream":
        """Concatenate another stream after this one (re-indexing its operations)."""
        num_qubits = max(self.num_qubits, other.num_qubits)
        pairs = [op.qubits for op in self.operations] + [op.qubits for op in other.operations]
        return InstructionStream.from_pairs(
            name or f"{self.name}+{other.name}", num_qubits, pairs
        )

    # -- views --------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self) -> Iterator[TwoQubitOp]:
        return iter(self.operations)

    def __getitem__(self, index: int) -> TwoQubitOp:
        return self.operations[index]

    @property
    def operation_count(self) -> int:
        return len(self.operations)

    def qubits_used(self) -> Set[int]:
        """The set of logical qubits that appear in at least one operation."""
        used: Set[int] = set()
        for op in self.operations:
            used.update(op.qubits)
        return used

    # -- dependency analysis -----------------------------------------------------------

    def dependencies(self) -> Dict[int, Set[int]]:
        """Map operation index -> indices it depends on (per-qubit program order)."""
        last_touch: Dict[int, int] = {}
        deps: Dict[int, Set[int]] = {}
        for op in self.operations:
            deps[op.index] = set()
            for qubit in op.qubits:
                if qubit in last_touch:
                    deps[op.index].add(last_touch[qubit])
                last_touch[qubit] = op.index
        return deps

    def dependents(self) -> Dict[int, Set[int]]:
        """Map operation index -> indices that depend on it."""
        result: Dict[int, Set[int]] = {op.index: set() for op in self.operations}
        for op_index, deps in self.dependencies().items():
            for dep in sorted(deps):
                result[dep].add(op_index)
        return result

    def wavefronts(self) -> List[List[TwoQubitOp]]:
        """ASAP schedule: groups of operations that may execute simultaneously.

        Wavefront ``k`` contains the operations whose longest dependency chain
        has length ``k``.  For the QFT stream this reproduces the paper's
        listing: [1-2], [1-3], [1-4, 2-3], [1-5, 2-4], [1-6, 2-5, 3-4], ...
        """
        deps = self.dependencies()
        level: Dict[int, int] = {}
        fronts: List[List[TwoQubitOp]] = []
        for op in self.operations:
            op_level = 0
            for dep in sorted(deps[op.index]):
                op_level = max(op_level, level[dep] + 1)
            level[op.index] = op_level
            while len(fronts) <= op_level:
                fronts.append([])
            fronts[op_level].append(op)
        return fronts

    def critical_path_length(self) -> int:
        """Length (in operations) of the longest dependency chain."""
        return len(self.wavefronts())

    def max_parallelism(self) -> int:
        """Largest number of operations in any wavefront."""
        fronts = self.wavefronts()
        return max((len(front) for front in fronts), default=0)

    def communication_matrix(self) -> Dict[Tuple[int, int], int]:
        """How many times each unordered qubit pair communicates."""
        matrix: Dict[Tuple[int, int], int] = {}
        for op in self.operations:
            key = tuple(sorted(op.qubits))
            matrix[key] = matrix.get(key, 0) + 1
        return matrix

    def describe(self) -> str:
        return (
            f"InstructionStream {self.name!r}: {self.operation_count} ops on "
            f"{self.num_qubits} logical qubits, critical path "
            f"{self.critical_path_length()}, max parallelism {self.max_parallelism()}"
        )
