"""Open-loop service mode: traffic generation, admission and scheduling.

Batch mode answers "how long does this program take?"; this package answers
the ROADMAP's north-star question instead: how does the machine behave as a
*shared EPR-distribution service* under sustained load from many tenants?

The pieces compose the classic open-loop queueing pipeline:

* :mod:`repro.service.arrivals` — deterministic traffic generation: per-tenant
  arrival processes (Poisson, fixed-rate, bursty MMPP) and request-size
  distributions (constant, heavy-tail Pareto), every draw taken from the
  SHA-256 substream RNG service so a traffic spec reproduces bitwise across
  processes and machines;
* :mod:`repro.service.admission` — pluggable :class:`AdmissionController`
  registry (always-admit, token-bucket, queue-bound) gating arrivals;
* :mod:`repro.service.schedulers` — pluggable :class:`RequestScheduler`
  registry (FIFO, strict-priority, fidelity-target-aware) ordering admitted
  requests onto the transport;
* :mod:`repro.service.metrics` — :class:`SteadyStateCollector`, a trace-bus
  probe reducing the request-lifecycle records to steady-state service
  metrics: offered vs. delivered load, completion-time p50/p99, per-tenant
  queue depths and drop rates;
* :mod:`repro.service.engine` — :class:`ServiceSimulator`, which drives
  either :class:`~repro.sim.transport.TransportBackend` with the generated
  request stream and returns a :class:`ServiceResult`.

Layering: this package sits *beside* :mod:`repro.sim` (it imports the engine
and transports downward) and below :mod:`repro.scenarios` (which translates a
``traffic`` spec section into calls here).  Like ``repro.sim`` it is bound by
the determinism lint contract: no ambient randomness, ever.
"""

from .admission import (
    AdmissionController,
    admission_descriptions,
    admission_names,
    create_admission,
    register_admission,
)
from .arrivals import ServiceRequest, generate_requests
from .engine import ServiceResult, ServiceSimulator, completion_time_percentiles
from .metrics import SteadyStateCollector, TenantStats, percentile
from .schedulers import (
    RequestScheduler,
    create_scheduler,
    register_scheduler,
    scheduler_descriptions,
    scheduler_names,
)

__all__ = [
    "AdmissionController",
    "RequestScheduler",
    "ServiceRequest",
    "ServiceResult",
    "ServiceSimulator",
    "SteadyStateCollector",
    "TenantStats",
    "admission_descriptions",
    "admission_names",
    "completion_time_percentiles",
    "create_admission",
    "create_scheduler",
    "generate_requests",
    "percentile",
    "register_admission",
    "register_scheduler",
    "scheduler_descriptions",
    "scheduler_names",
]
