"""Pluggable request schedulers ordering admitted work onto the transport.

The scheduler owns the admitted-but-not-yet-dispatched queue: the service
engine pushes every admitted request and pops the next one whenever an
in-flight slot frees up.  Three disciplines ship with the repository:

* ``fifo`` — arrival order (the baseline; per-tenant fairness is whatever
  the arrival mix happens to be);
* ``priority`` — strict priority by the tenant's ``priority`` rank (lower
  first), FIFO within a rank;
* ``fidelity`` — fidelity-class-aware: requests carrying a tighter
  ``target_fidelity`` dispatch first (their channels spend longest in
  purification, so letting them queue compounds their latency), classless
  requests last, FIFO within a class.

All disciplines break ties on a monotone push sequence, never on hash order,
so dispatch order is deterministic.  The registry mirrors
:mod:`repro.sim.transport`'s and :data:`repro.scenarios.spec.SCHEDULER_NAMES`
pins the names literally for spec validation (a test keeps the two in sync).
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from collections import deque
from typing import ClassVar, Deque, Dict, List, Tuple, Type

from ..errors import ConfigurationError, SimulationError
from .arrivals import ServiceRequest


class RequestScheduler(ABC):
    """An ordered queue of admitted requests awaiting dispatch."""

    #: Registry name; subclasses must override.
    name: ClassVar[str] = "abstract"
    #: One-line description shown by the CLI.
    description: ClassVar[str] = ""

    @abstractmethod
    def push(self, request: ServiceRequest) -> None:
        """Enqueue an admitted request."""

    @abstractmethod
    def pop(self) -> ServiceRequest:
        """Dequeue the next request to dispatch (raises when empty)."""

    @abstractmethod
    def __len__(self) -> int:
        """Requests currently queued."""


class FifoScheduler(RequestScheduler):
    """Dispatch in admission order."""

    name = "fifo"
    description = "dispatch admitted requests strictly in arrival order"

    def __init__(self) -> None:
        self._queue: Deque[ServiceRequest] = deque()

    def push(self, request: ServiceRequest) -> None:
        self._queue.append(request)

    def pop(self) -> ServiceRequest:
        if not self._queue:
            raise SimulationError("cannot pop from an empty request queue")
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)


class _HeapScheduler(RequestScheduler):
    """Shared heap machinery: subclasses define the priority key."""

    def __init__(self) -> None:
        self._heap: List[Tuple[Tuple[float, ...], int, ServiceRequest]] = []
        self._sequence = 0

    def _key(self, request: ServiceRequest) -> Tuple[float, ...]:
        raise NotImplementedError

    def push(self, request: ServiceRequest) -> None:
        heapq.heappush(self._heap, (self._key(request), self._sequence, request))
        self._sequence += 1

    def pop(self) -> ServiceRequest:
        if not self._heap:
            raise SimulationError("cannot pop from an empty request queue")
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)


class PriorityScheduler(_HeapScheduler):
    """Strict priority by tenant rank (lower first), FIFO within a rank."""

    name = "priority"
    description = "strict priority by tenant rank (lower first), FIFO within"

    def _key(self, request: ServiceRequest) -> Tuple[float, ...]:
        return (float(request.priority),)


class FidelityScheduler(_HeapScheduler):
    """Tightest fidelity class first; classless requests last."""

    name = "fidelity"
    description = "tightest target_fidelity class first; classless requests last"

    def _key(self, request: ServiceRequest) -> Tuple[float, ...]:
        if request.target_fidelity is None:
            return (1.0, 0.0)
        # Higher target == tighter class == earlier dispatch.
        return (0.0, -request.target_fidelity)


# -- registry ---------------------------------------------------------------------------

_REGISTRY: Dict[str, Type[RequestScheduler]] = {}


def register_scheduler(cls: Type[RequestScheduler]) -> Type[RequestScheduler]:
    """Class decorator: make ``cls`` selectable by its ``name``."""
    name = getattr(cls, "name", None)
    if not isinstance(name, str) or not name or name == RequestScheduler.name:
        raise ConfigurationError(f"request scheduler {cls!r} needs a distinct 'name'")
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ConfigurationError(
            f"request scheduler name {name!r} is already registered to {existing!r}"
        )
    _REGISTRY[name] = cls
    return cls


register_scheduler(FifoScheduler)
register_scheduler(PriorityScheduler)
register_scheduler(FidelityScheduler)


def scheduler_names() -> Tuple[str, ...]:
    """Registered scheduler names, sorted."""
    return tuple(sorted(_REGISTRY))


def scheduler_descriptions() -> Dict[str, str]:
    """``{name: one-line description}`` for every registered scheduler."""
    return {name: _REGISTRY[name].description for name in sorted(_REGISTRY)}


def create_scheduler(name: str) -> RequestScheduler:
    """Instantiate the scheduler registered under ``name``."""
    key = (name or "").strip()
    cls = _REGISTRY.get(key)
    if cls is None:
        raise ConfigurationError(
            f"unknown request scheduler {name!r}; registered: {sorted(_REGISTRY)}"
        )
    return cls()
