"""Deterministic open-loop traffic generation.

Every request the service mode will ever see is generated *up front* from the
traffic spec: per-tenant arrival times, request sizes and endpoint pairs are
drawn from named SHA-256 substreams (:mod:`repro.workloads.rng`), then the
per-tenant streams are merged into one globally-ordered request list.  Three
properties follow:

* **Bitwise determinism** — the same spec yields the same request stream in
  every process, on every machine, on either transport backend; the verify
  harness's traffic-parity check rests on this.
* **Stream isolation** — each tenant's arrivals, sizes and endpoints come
  from unrelated substreams, so adding a tenant (or changing one tenant's
  size distribution) never perturbs another tenant's draws.
* **Open-loop offered load** — arrivals do not depend on service times, so
  the offered side of every steady-state metric is a property of the spec
  alone, exactly as in an open-loop traffic generator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from ..errors import ScenarioError
from ..network.geometry import Coordinate
from ..workloads.rng import substream_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..scenarios.spec import TenantSpec, TrafficSpec


@dataclass(frozen=True)
class ServiceRequest:
    """One open-loop request: open ``channels`` back-to-back channels.

    A request models a tenant asking the interconnect for an end-to-end
    entanglement circuit between two T' nodes; its "size" is the number of
    sequential channel instances servicing it takes, so heavy-tailed size
    distributions translate directly into heavy-tailed service demands.
    """

    request_id: int
    tenant: str
    arrival_us: float
    channels: int
    source: Coordinate
    dest: Coordinate
    priority: int = 0
    target_fidelity: Optional[float] = None


def _interarrival_us(tenant: "TenantSpec", rng: random.Random, now_us: float) -> float:
    """Next interarrival gap for ``tenant`` with the clock at ``now_us``."""
    process = tenant.arrival_process
    mean = tenant.mean_interarrival_us
    if process == "fixed":
        return mean
    if process == "poisson":
        return rng.expovariate(1.0 / mean)
    if process == "mmpp":
        # Two-state Markov-modulated Poisson with deterministic phase
        # switching: bursts of ``burst_factor``-times-faster arrivals
        # alternate with equally slower quiet phases every ``phase_us``,
        # preserving the long-run mean rate.
        burst_phase = int(now_us // tenant.phase_us) % 2 == 0
        phase_mean = mean / tenant.burst_factor if burst_phase else mean * tenant.burst_factor
        return rng.expovariate(1.0 / phase_mean)
    raise ScenarioError(f"unknown arrival process {process!r}")


def _request_channels(tenant: "TenantSpec", rng: random.Random) -> int:
    """Number of channels one request opens, per the tenant's size distribution."""
    if tenant.size_dist == "constant":
        return tenant.channels
    if tenant.size_dist == "pareto":
        # Heavy tail scaled by the nominal size, floored at one channel and
        # capped so a single draw cannot monopolise the run.
        drawn = int(tenant.channels * rng.paretovariate(tenant.alpha))
        return min(tenant.max_channels, max(1, drawn))
    raise ScenarioError(f"unknown size distribution {tenant.size_dist!r}")


def _endpoints(
    nodes: Sequence[Coordinate], rng: random.Random
) -> "tuple[Coordinate, Coordinate]":
    """A uniformly random ordered pair of *distinct* T' nodes."""
    source = nodes[rng.randrange(len(nodes))]
    dest = nodes[rng.randrange(len(nodes))]
    while dest == source:
        dest = nodes[rng.randrange(len(nodes))]
    return source, dest


def tenant_requests(
    name: str,
    tenant: "TenantSpec",
    nodes: Sequence[Coordinate],
    *,
    duration_us: float,
    seed: int,
) -> List[ServiceRequest]:
    """One tenant's request stream over ``[0, duration_us)``.

    Request ids are provisional (per-tenant arrival index); the merge in
    :func:`generate_requests` reassigns them globally.  Arrival, size and
    endpoint draws come from three isolated substreams addressed by
    ``(purpose, tenant name, seed)``.
    """
    arrival_rng = substream_rng("service.arrivals", name, seed=seed)
    size_rng = substream_rng("service.sizes", name, seed=seed)
    endpoint_rng = substream_rng("service.endpoints", name, seed=seed)
    requests: List[ServiceRequest] = []
    now_us = 0.0
    while True:
        now_us += _interarrival_us(tenant, arrival_rng, now_us)
        if now_us >= duration_us:
            break
        source, dest = _endpoints(nodes, endpoint_rng)
        requests.append(
            ServiceRequest(
                request_id=len(requests),
                tenant=name,
                arrival_us=now_us,
                channels=_request_channels(tenant, size_rng),
                source=source,
                dest=dest,
                priority=tenant.priority,
                target_fidelity=tenant.target_fidelity,
            )
        )
    return requests


def generate_requests(
    traffic: "TrafficSpec", nodes: Sequence[Coordinate]
) -> List[ServiceRequest]:
    """The full, globally-ordered request stream a traffic spec describes.

    Tenants are generated independently (in sorted name order) and merged by
    ``(arrival time, tenant name, per-tenant index)`` — a total order, so the
    merged stream and the global request ids are deterministic even when two
    tenants produce arrivals at the same instant.
    """
    nodes = list(nodes)
    if len(nodes) < 2:
        raise ScenarioError(
            f"service mode needs at least 2 T' nodes for distinct endpoints, got {len(nodes)}"
        )
    merged: List[ServiceRequest] = []
    for name in sorted(traffic.tenants):
        merged.extend(
            tenant_requests(
                name,
                traffic.tenants[name],
                nodes,
                duration_us=traffic.duration_us,
                seed=traffic.seed,
            )
        )
    merged.sort(key=lambda r: (r.arrival_us, r.tenant, r.request_id))
    return [
        ServiceRequest(
            request_id=index,
            tenant=request.tenant,
            arrival_us=request.arrival_us,
            channels=request.channels,
            source=request.source,
            dest=request.dest,
            priority=request.priority,
            target_fidelity=request.target_fidelity,
        )
        for index, request in enumerate(merged)
    ]
