"""Pluggable admission controllers gating open-loop arrivals.

An admission controller is the service's first line of overload defence: it
sees every arrival *before* queueing and either admits it or drops it with a
reason.  Three policies ship with the repository:

* ``always`` — admit everything (the open-loop baseline; delivered load is
  then bounded only by the transport's capacity);
* ``token_bucket`` — classic rate limiter: tokens refill continuously at
  ``rate_per_ms`` up to ``burst``, one token per admitted request, so
  sustained offered load above the rate is shed while bursts up to the
  bucket depth pass through;
* ``queue_bound`` — drop-tail: reject arrivals that find the request queue
  already ``queue_limit`` deep.

The registry mirrors :mod:`repro.sim.transport`'s backend registry so every
layer above selects a policy by name, and
:data:`repro.scenarios.spec.ADMISSION_NAMES` pins the names literally for
spec validation (a test keeps the two in sync).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import ClassVar, Dict, Optional, Tuple, Type

from ..errors import ConfigurationError
from .arrivals import ServiceRequest


class AdmissionController(ABC):
    """Decides, at arrival time, whether a request enters the service queue."""

    #: Registry name; subclasses must override.
    name: ClassVar[str] = "abstract"
    #: One-line description shown by the CLI.
    description: ClassVar[str] = ""

    @abstractmethod
    def admit(
        self, request: ServiceRequest, *, now_us: float, queue_depth: int
    ) -> Optional[str]:
        """``None`` to admit ``request``; a short drop reason otherwise."""


class AlwaysAdmit(AdmissionController):
    """Admit every arrival (the open-loop baseline)."""

    name = "always"
    description = "admit every request; load shedding is the transport's problem"

    def admit(
        self, request: ServiceRequest, *, now_us: float, queue_depth: int
    ) -> Optional[str]:
        return None


class TokenBucket(AdmissionController):
    """Continuous-refill token bucket: sustained rate + bounded burst."""

    name = "token_bucket"
    description = "rate-limit admissions: rate_per_ms sustained, burst tokens deep"

    def __init__(self, *, rate_per_ms: float, burst: int) -> None:
        if rate_per_ms <= 0:
            raise ConfigurationError(f"token bucket rate must be > 0, got {rate_per_ms}")
        if burst < 1:
            raise ConfigurationError(f"token bucket burst must be >= 1, got {burst}")
        self.rate_per_ms = rate_per_ms
        self.burst = burst
        self._tokens = float(burst)
        self._last_us = 0.0

    def admit(
        self, request: ServiceRequest, *, now_us: float, queue_depth: int
    ) -> Optional[str]:
        elapsed_us = now_us - self._last_us
        self._last_us = now_us
        self._tokens = min(
            float(self.burst), self._tokens + elapsed_us * (self.rate_per_ms / 1000.0)
        )
        if self._tokens < 1.0:
            return "rate_limited"
        self._tokens -= 1.0
        return None


class QueueBound(AdmissionController):
    """Drop-tail: reject arrivals to a queue already at its limit."""

    name = "queue_bound"
    description = "drop requests arriving to a queue already queue_limit deep"

    def __init__(self, *, queue_limit: int) -> None:
        if queue_limit < 1:
            raise ConfigurationError(f"queue limit must be >= 1, got {queue_limit}")
        self.queue_limit = queue_limit

    def admit(
        self, request: ServiceRequest, *, now_us: float, queue_depth: int
    ) -> Optional[str]:
        if queue_depth >= self.queue_limit:
            return "queue_full"
        return None


# -- registry ---------------------------------------------------------------------------

_REGISTRY: Dict[str, Type[AdmissionController]] = {}


def register_admission(cls: Type[AdmissionController]) -> Type[AdmissionController]:
    """Class decorator: make ``cls`` selectable by its ``name``."""
    name = getattr(cls, "name", None)
    if not isinstance(name, str) or not name or name == AdmissionController.name:
        raise ConfigurationError(f"admission controller {cls!r} needs a distinct 'name'")
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ConfigurationError(
            f"admission controller name {name!r} is already registered to {existing!r}"
        )
    _REGISTRY[name] = cls
    return cls


register_admission(AlwaysAdmit)
register_admission(TokenBucket)
register_admission(QueueBound)


def admission_names() -> Tuple[str, ...]:
    """Registered admission controller names, sorted."""
    return tuple(sorted(_REGISTRY))


def admission_descriptions() -> Dict[str, str]:
    """``{name: one-line description}`` for every registered controller."""
    return {name: _REGISTRY[name].description for name in sorted(_REGISTRY)}


def create_admission(
    name: str, *, rate_per_ms: float = 10.0, burst: int = 8, queue_limit: int = 64
) -> AdmissionController:
    """Instantiate the controller registered under ``name``.

    Policy parameters reach only the policies that declare them — the
    token-bucket rate/burst, the drop-tail queue limit — so adding a policy
    never widens every caller's signature.
    """
    key = (name or "").strip()
    cls = _REGISTRY.get(key)
    if cls is None:
        raise ConfigurationError(
            f"unknown admission controller {name!r}; registered: {sorted(_REGISTRY)}"
        )
    if cls is TokenBucket:
        return TokenBucket(rate_per_ms=rate_per_ms, burst=burst)
    if cls is QueueBound:
        return QueueBound(queue_limit=queue_limit)
    return cls()
