"""Steady-state service metrics, reduced from the request-lifecycle trace.

:class:`SteadyStateCollector` is a trace-bus probe: subscribe it to any bus
carrying the :data:`repro.trace.REQUEST_KINDS` records and it accumulates the
classic open-loop service statistics — offered vs. delivered load, request
completion-time percentiles, per-tenant queue depths and drop rates — without
the service engine holding any metrics state of its own.  Building on the bus
(rather than on engine internals) means any consumer of a service trace, the
golden JSONL fixtures included, can recompute the same summary.

Percentiles use the deterministic nearest-rank definition (no interpolation),
so p50/p99 are always values that actually occurred and two runs with
identical traces report bitwise-identical percentiles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..trace.records import (
    RequestAdmitted,
    RequestArrived,
    RequestCompleted,
    RequestDispatched,
    RequestDropped,
    TraceRecord,
)


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile of ``values`` (0 < p <= 100); 0.0 when empty."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil((p / 100.0) * len(ordered)))
    return ordered[rank - 1]


@dataclass
class TenantStats:
    """Per-tenant accumulator for the request lifecycle."""

    offered: int = 0
    offered_channels: int = 0
    admitted: int = 0
    dropped: int = 0
    completed: int = 0
    completed_channels: int = 0
    latencies_us: List[float] = field(default_factory=list)
    waits_us: List[float] = field(default_factory=list)
    drop_reasons: Dict[str, int] = field(default_factory=dict)
    max_queue_depth: int = 0

    @property
    def drop_rate(self) -> float:
        return self.dropped / self.offered if self.offered else 0.0

    def summary(self) -> Dict[str, Any]:
        """Flat JSON-safe per-tenant summary."""
        return {
            "offered": self.offered,
            "offered_channels": self.offered_channels,
            "admitted": self.admitted,
            "dropped": self.dropped,
            "drop_rate": self.drop_rate,
            "drop_reasons": dict(sorted(self.drop_reasons.items())),
            "completed": self.completed,
            "completed_channels": self.completed_channels,
            "latency_p50_us": percentile(self.latencies_us, 50),
            "latency_p99_us": percentile(self.latencies_us, 99),
            "wait_p50_us": percentile(self.waits_us, 50),
            "wait_p99_us": percentile(self.waits_us, 99),
            "max_queue_depth": self.max_queue_depth,
        }


class SteadyStateCollector:
    """Reduces request-lifecycle records to steady-state service metrics.

    Subscribe with ``bus.subscribe(collector, kinds=REQUEST_KINDS)`` — the
    collector is a plain probe callable.  ``duration_us`` is the offered-load
    window (the traffic spec's horizon); delivered load is reported over the
    actual makespan, which the caller passes to :meth:`summary` because only
    the engine knows when the queue finally drained.
    """

    def __init__(self, *, duration_us: float) -> None:
        self.duration_us = duration_us
        self.tenants: Dict[str, TenantStats] = {}
        self.max_queue_depth = 0
        self._request_tenant: Dict[int, str] = {}

    def _tenant(self, name: str) -> TenantStats:
        stats = self.tenants.get(name)
        if stats is None:
            stats = TenantStats()
            self.tenants[name] = stats
        return stats

    def __call__(self, record: TraceRecord) -> None:
        if isinstance(record, RequestArrived):
            stats = self._tenant(record.tenant)
            stats.offered += 1
            stats.offered_channels += record.channels
            self._request_tenant[record.request_id] = record.tenant
        elif isinstance(record, RequestAdmitted):
            stats = self._tenant(record.tenant)
            stats.admitted += 1
            stats.max_queue_depth = max(stats.max_queue_depth, record.queue_depth)
            self.max_queue_depth = max(self.max_queue_depth, record.queue_depth)
        elif isinstance(record, RequestDropped):
            stats = self._tenant(record.tenant)
            stats.dropped += 1
            stats.drop_reasons[record.reason] = stats.drop_reasons.get(record.reason, 0) + 1
        elif isinstance(record, RequestDispatched):
            stats = self._tenant(record.tenant)
            stats.waits_us.append(record.waited_us)
        elif isinstance(record, RequestCompleted):
            stats = self._tenant(record.tenant)
            stats.completed += 1
            stats.completed_channels += record.channels
            stats.latencies_us.append(record.waited_us + record.service_us)

    # -- aggregates -------------------------------------------------------------------

    @property
    def offered(self) -> int:
        return sum(s.offered for s in self.tenants.values())

    @property
    def admitted(self) -> int:
        return sum(s.admitted for s in self.tenants.values())

    @property
    def dropped(self) -> int:
        return sum(s.dropped for s in self.tenants.values())

    @property
    def completed(self) -> int:
        return sum(s.completed for s in self.tenants.values())

    @property
    def drop_rate(self) -> float:
        offered = self.offered
        return self.dropped / offered if offered else 0.0

    def all_latencies_us(self) -> List[float]:
        merged: List[float] = []
        for name in sorted(self.tenants):
            merged.extend(self.tenants[name].latencies_us)
        return merged

    def all_waits_us(self) -> List[float]:
        merged: List[float] = []
        for name in sorted(self.tenants):
            merged.extend(self.tenants[name].waits_us)
        return merged

    def summary(self, *, makespan_us: Optional[float] = None) -> Dict[str, Any]:
        """Flat JSON-safe steady-state summary.

        Offered load is channels per millisecond over the traffic horizon;
        delivered load is completed channels per millisecond over the actual
        makespan (defaulting to the horizon when the caller has none).
        """
        horizon_ms = self.duration_us / 1000.0
        span_us = makespan_us if makespan_us is not None and makespan_us > 0 else self.duration_us
        span_ms = span_us / 1000.0
        offered_channels = sum(s.offered_channels for s in self.tenants.values())
        completed_channels = sum(s.completed_channels for s in self.tenants.values())
        latencies = self.all_latencies_us()
        waits = self.all_waits_us()
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "dropped": self.dropped,
            "completed": self.completed,
            "drop_rate": self.drop_rate,
            "offered_channels": offered_channels,
            "completed_channels": completed_channels,
            "offered_load_per_ms": offered_channels / horizon_ms if horizon_ms else 0.0,
            "delivered_load_per_ms": completed_channels / span_ms if span_ms else 0.0,
            "latency_p50_us": percentile(latencies, 50),
            "latency_p99_us": percentile(latencies, 99),
            "wait_p50_us": percentile(waits, 50),
            "wait_p99_us": percentile(waits, 99),
            "max_queue_depth": self.max_queue_depth,
            "tenants": {name: self.tenants[name].summary() for name in sorted(self.tenants)},
        }
