"""The open-loop service simulator: traffic in, steady-state metrics out.

:class:`ServiceSimulator` composes the pieces of this package around the same
discrete-event kernel and transport backends batch mode uses: requests are
generated up front (:mod:`repro.service.arrivals`), each arrival is gated by
the admission controller, admitted requests queue in the request scheduler,
and at most ``max_inflight`` requests at a time hold transport channels —
each request's channels serviced back-to-back between its fixed endpoints.

Every lifecycle milestone is emitted on the trace bus as a typed record
(arrive/admit/drop/dispatch/complete) and the
:class:`~repro.service.metrics.SteadyStateCollector` subscribes to exactly
those records, so the engine itself holds no metrics state; goldens diff the
same stream the metrics are computed from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from ..errors import ConfigurationError, SimulationError
from ..network.layout import CommRequest
from ..sim.control import PlannedCommunication
from ..sim.engine import SimulationEngine
from ..sim.machine import QuantumMachine
from ..sim.results import ChannelRecord
from ..sim.transport import create_transport
from ..trace import (
    REQUEST_KINDS,
    RequestAdmitted,
    RequestArrived,
    RequestCompleted,
    RequestDispatched,
    RequestDropped,
    RunEnded,
    TraceBus,
)
from ..trace.records import WarmStartApplied, machine_record, warm_start_record_fields
from .admission import create_admission
from .arrivals import ServiceRequest, generate_requests
from .metrics import SteadyStateCollector
from .schedulers import create_scheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..scenarios.spec import TrafficSpec


@dataclass
class _RequestState:
    """Progress of one dispatched request through its channel sequence."""

    request: ServiceRequest
    dispatch_us: float
    plan: Any
    channels_done: int = 0


@dataclass
class ServiceResult:
    """Outcome of one open-loop service run.

    Duck-type-compatible with :class:`~repro.sim.results.SimulationResult`
    where the verify harness and CLI need it (``makespan_us``, ``channels``,
    ``channel_count``, ``resource_utilisation``, ``backend``,
    ``fidelity_summary()``), plus the steady-state ``metrics`` summary and
    the deterministic ``completion_order`` the traffic parity check diffs.
    """

    machine_description: str
    backend: str
    makespan_us: float
    duration_us: float
    channels: List[ChannelRecord] = field(default_factory=list)
    resource_utilisation: Dict[str, float] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    completion_order: List[int] = field(default_factory=list)
    target_fidelity: Optional[float] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def channel_count(self) -> int:
        return len(self.channels)

    @property
    def operation_count(self) -> int:
        """Completed requests (the service-mode analogue of operations)."""
        return self.completed

    @property
    def offered(self) -> int:
        return int(self.metrics.get("offered", 0))

    @property
    def admitted(self) -> int:
        return int(self.metrics.get("admitted", 0))

    @property
    def dropped(self) -> int:
        return int(self.metrics.get("dropped", 0))

    @property
    def completed(self) -> int:
        return int(self.metrics.get("completed", 0))

    @property
    def drop_rate(self) -> float:
        return float(self.metrics.get("drop_rate", 0.0))

    def delivered_fidelities(self) -> List[float]:
        return [
            c.delivered_fidelity for c in self.channels if c.delivered_fidelity is not None
        ]

    def fidelity_summary(self) -> Optional[Dict[str, object]]:
        """Flat fidelity summary over serviced channels (None when untracked)."""
        values = self.delivered_fidelities()
        if not values:
            return None
        summary: Dict[str, object] = {
            "channels": len(values),
            "mean": sum(values) / len(values),
            "min": min(values),
            "max": max(values),
        }
        if self.target_fidelity is not None:
            summary["target"] = self.target_fidelity
            summary["below_target"] = sum(1 for v in values if v < self.target_fidelity)
        return summary

    def describe(self) -> str:
        """Human-readable steady-state report (the ``repro serve`` text view)."""
        m = self.metrics
        lines = [
            f"ServiceResult on {self.machine_description} ({self.backend} backend)",
            f"  horizon             : {self.duration_us:.1f} us offered,"
            f" drained at {self.makespan_us:.1f} us",
            f"  requests            : {self.offered} offered / {self.admitted} admitted /"
            f" {self.dropped} dropped / {self.completed} completed",
            f"  drop rate           : {self.drop_rate:6.1%}",
            f"  offered load        : {m.get('offered_load_per_ms', 0.0):.3f} channels/ms",
            f"  delivered load      : {m.get('delivered_load_per_ms', 0.0):.3f} channels/ms",
            f"  completion latency  : p50 {m.get('latency_p50_us', 0.0):.1f} us,"
            f" p99 {m.get('latency_p99_us', 0.0):.1f} us",
            f"  queueing delay      : p50 {m.get('wait_p50_us', 0.0):.1f} us,"
            f" p99 {m.get('wait_p99_us', 0.0):.1f} us",
            f"  peak queue depth    : {m.get('max_queue_depth', 0)}",
        ]
        fidelity = self.fidelity_summary()
        if fidelity is not None:
            line = (
                f"  delivered fidelity  : mean {fidelity['mean']:.6f}, "
                f"min {fidelity['min']:.6f} over {fidelity['channels']} channels"
            )
            if "target" in fidelity:
                line += f" (target {fidelity['target']:.6f}, {fidelity['below_target']} below)"
            lines.append(line)
        tenants = m.get("tenants", {})
        if tenants:
            lines.append("  tenants:")
            for name in sorted(tenants):
                t = tenants[name]
                lines.append(
                    f"    {name:16s}: {t['offered']:4d} offered,"
                    f" {t['drop_rate']:6.1%} dropped,"
                    f" p99 {t['latency_p99_us']:9.1f} us,"
                    f" peak queue {t['max_queue_depth']}"
                )
        if self.resource_utilisation:
            lines.append("  resource utilisation:")
            for name, value in sorted(self.resource_utilisation.items()):
                lines.append(f"    {name:20s}: {value:6.1%}")
        return "\n".join(lines)


class ServiceSimulator:
    """Drives a transport backend with an open-loop request stream.

    ``backend``/``allocator`` select the transport exactly as
    :class:`~repro.sim.simulator.CommunicationSimulator` does, so the same
    machine serves batch and service runs and the fluid-vs-detailed parity
    argument carries over to service mode.
    """

    def __init__(
        self,
        machine: QuantumMachine,
        *,
        allocator: str = "incremental",
        backend: str = "fluid",
    ) -> None:
        self.machine = machine
        self.allocator = allocator
        self.backend = backend

    def run(
        self,
        traffic: "TrafficSpec",
        *,
        trace: Optional[TraceBus] = None,
    ) -> ServiceResult:
        """Generate, admit, schedule and service ``traffic`` to completion.

        Arrivals stop at the traffic horizon; the run then drains — every
        admitted request completes — so the makespan is horizon plus drain.
        A caller-provided ``trace`` must accept the request-lifecycle kinds
        (the steady-state metrics are computed from that stream); without
        one, a private non-accumulating bus carries them.
        """
        if trace is None:
            bus = TraceBus(kinds=REQUEST_KINDS, keep_records=False)
        else:
            if not trace.wants(RequestArrived.kind):
                raise ConfigurationError(
                    "service-mode trace bus must accept the request-lifecycle "
                    "kinds; widen its 'kinds' filter to include REQUEST_KINDS"
                )
            bus = trace
        collector = SteadyStateCollector(duration_us=traffic.duration_us)
        bus.subscribe(collector, kinds=REQUEST_KINDS)
        completion_order: List[int] = []

        engine = SimulationEngine(trace=trace)
        transport = create_transport(
            self.backend, engine, self.machine, allocator=self.allocator
        )
        requests = generate_requests(traffic, list(self.machine.topology.nodes()))
        admission = create_admission(
            traffic.admission,
            rate_per_ms=traffic.admission_rate_per_ms,
            burst=traffic.admission_burst,
            queue_limit=traffic.queue_limit,
        )
        scheduler = create_scheduler(traffic.scheduler)
        inflight = 0
        tenant_count = len(traffic.tenants)
        if trace is not None:
            trace.emit(
                machine_record(
                    self.machine,
                    workload=f"service[{tenant_count} tenants]",
                    operations=len(requests),
                )
            )
        warm_start = self.machine.warm_start
        if trace is not None and warm_start is not None and trace.wants(WarmStartApplied.kind):
            trace.emit(WarmStartApplied(t_us=0.0, **warm_start_record_fields(warm_start)))

        def pump() -> None:
            nonlocal inflight
            while inflight < traffic.max_inflight and len(scheduler) > 0:
                request = scheduler.pop()
                inflight += 1
                bus.emit(
                    RequestDispatched(
                        t_us=engine.now,
                        request_id=request.request_id,
                        tenant=request.tenant,
                        waited_us=engine.now - request.arrival_us,
                        queue_depth=len(scheduler),
                    )
                )
                state = _RequestState(
                    request=request,
                    dispatch_us=engine.now,
                    plan=self.machine.planner.plan(request.source, request.dest),
                )
                start_channel(state)

        def start_channel(state: _RequestState) -> None:
            request = state.request
            planned = PlannedCommunication(
                request=CommRequest(
                    source=request.source,
                    dest=request.dest,
                    qubit=request.request_id,
                    purpose=f"service:{request.tenant}",
                ),
                plan=state.plan,
            )
            transport.start(planned, lambda s=state: channel_done(s))

        def channel_done(state: _RequestState) -> None:
            nonlocal inflight
            state.channels_done += 1
            if state.channels_done < state.request.channels:
                start_channel(state)
                return
            request = state.request
            completion_order.append(request.request_id)
            bus.emit(
                RequestCompleted(
                    t_us=engine.now,
                    request_id=request.request_id,
                    tenant=request.tenant,
                    channels=request.channels,
                    waited_us=state.dispatch_us - request.arrival_us,
                    service_us=engine.now - state.dispatch_us,
                )
            )
            inflight -= 1
            pump()

        def on_arrival(request: ServiceRequest) -> None:
            bus.emit(
                RequestArrived(
                    t_us=engine.now,
                    request_id=request.request_id,
                    tenant=request.tenant,
                    channels=request.channels,
                    source=request.source.as_tuple(),
                    destination=request.dest.as_tuple(),
                )
            )
            reason = admission.admit(
                request, now_us=engine.now, queue_depth=len(scheduler)
            )
            if reason is not None:
                bus.emit(
                    RequestDropped(
                        t_us=engine.now,
                        request_id=request.request_id,
                        tenant=request.tenant,
                        reason=reason,
                    )
                )
                return
            scheduler.push(request)
            bus.emit(
                RequestAdmitted(
                    t_us=engine.now,
                    request_id=request.request_id,
                    tenant=request.tenant,
                    queue_depth=len(scheduler),
                )
            )
            pump()

        for request in requests:
            engine.schedule_at(request.arrival_us, lambda r=request: on_arrival(r))
        engine.run()
        if inflight != 0 or len(scheduler) != 0:
            raise SimulationError(
                f"service run drained with {inflight} requests in flight and "
                f"{len(scheduler)} still queued"
            )
        makespan = engine.now
        if trace is not None:
            trace.emit(
                RunEnded(
                    t_us=makespan,
                    makespan_us=makespan,
                    operations=collector.completed,
                    channels=len(transport.records),
                )
            )
        return ServiceResult(
            machine_description=self.machine.describe(),
            backend=transport.name,
            makespan_us=makespan,
            duration_us=traffic.duration_us,
            channels=transport.records,
            resource_utilisation=transport.utilisation_report(makespan),
            metrics=collector.summary(makespan_us=makespan),
            completion_order=completion_order,
            target_fidelity=(
                self.machine.params.threshold_fidelity
                if self.machine.track_fidelity
                else None
            ),
            metadata={
                "requests": len(requests),
                "tenants": tenant_count,
                "admission": traffic.admission,
                "scheduler": traffic.scheduler,
                "max_inflight": traffic.max_inflight,
                "allocation": self.machine.allocation.label,
                "layout": self.machine.layout_name,
                "warm_start": dict(warm_start) if warm_start is not None else None,
            },
        )


def completion_time_percentiles(result: ServiceResult) -> Tuple[float, float]:
    """(p50, p99) request completion latency of a service run, in µs."""
    metrics = result.metrics
    return (
        float(metrics.get("latency_p50_us", 0.0)),
        float(metrics.get("latency_p99_us", 0.0)),
    )


__all__ = [
    "ServiceResult",
    "ServiceSimulator",
    "completion_time_percentiles",
]
