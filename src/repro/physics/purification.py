"""Entanglement purification protocols (paper Section 4.5, Figure 8).

Purification combines two lower-fidelity EPR pairs using local operations at
both endpoints plus one exchanged classical bit, producing (on success) a
single pair of higher fidelity.  The paper compares two recurrence protocols:

* **BBPSSW** (Bennett et al. 1996): twirls its inputs to Werner form every
  round, which makes the analysis simple but spreads errors evenly and limits
  the convergence to a geometric ~2/3 error reduction per round near F = 1.
* **DEJMPS** (Deutsch et al. 1996): keeps the Bell-diagonal structure and adds
  a pair of local rotations before the bilateral CNOT, giving much faster
  (roughly quadratic) convergence and a higher maximum fidelity.

Both are implemented exactly on Bell-diagonal coefficient vectors, including
the effect of noisy local operations (one/two-qubit gate error, per-round
ballistic shuttling, measurement flips), which produces the error floors
visible in Figure 8 and the feasibility cliff of Figure 12.

The bilateral-CNOT recurrence in the (phi+, psi+, psi-, phi-) ordering used by
:class:`~repro.physics.states.BellDiagonalState`:

    success branch (outcomes coincide), unnormalised:
        a' = a^2 + d^2      d' = 2 a d
        b' = b^2 + c^2      c' = 2 b c
    acceptance probability  N = (a + d)^2 + (b + c)^2

    failure branch (outcomes differ), unnormalised:
        a' = b' = a b + c d      c' = d' = a c + b d
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional

from ..errors import ConfigurationError, InfeasibleError
from .gates import NoiseModel
from .parameters import IonTrapParameters
from .states import BellDiagonalState

#: Safety bound on recurrence iteration when searching for fixed points.
_MAX_SEARCH_ROUNDS = 200


@dataclass(frozen=True)
class PurificationOutcome:
    """Result of one purification round.

    Attributes
    ----------
    state:
        Bell-diagonal state of the surviving pair, conditioned on acceptance.
    success_probability:
        Probability that the round is accepted (both classical bits agree,
        including the effect of measurement errors).
    """

    state: BellDiagonalState
    success_probability: float

    @property
    def fidelity(self) -> float:
        return self.state.fidelity

    @property
    def error(self) -> float:
        return self.state.error

    @property
    def expected_input_pairs(self) -> float:
        """Expected number of input pairs consumed per surviving output pair.

        Two pairs enter each attempt and one attempt in ``1/success_probability``
        succeeds, so the expectation is ``2 / success_probability``.
        """
        if self.success_probability <= 0.0:
            return float("inf")
        return 2.0 / self.success_probability


def _bilateral_cnot_branches(a: BellDiagonalState, b: BellDiagonalState):
    """Return (success_coeffs, fail_coeffs, acceptance_probability)."""
    a0, a1, a2, a3 = a.coefficients  # phi+, psi+, psi-, phi-
    b0, b1, b2, b3 = b.coefficients
    success = (
        a0 * b0 + a3 * b3,
        a1 * b1 + a2 * b2,
        a1 * b2 + a2 * b1,
        a0 * b3 + a3 * b0,
    )
    fail = (
        a0 * b1 + a3 * b2,
        a1 * b0 + a2 * b3,
        a1 * b3 + a2 * b0,
        a0 * b2 + a3 * b1,
    )
    n_success = sum(success)
    return success, fail, n_success


class PurificationProtocol(ABC):
    """Common interface for recurrence purification protocols."""

    #: Short protocol name used in reports and figure legends.
    name: str = "abstract"

    def __init__(self, params: IonTrapParameters | None = None, *, noisy: bool = True) -> None:
        self.params = params or IonTrapParameters.default()
        self.noisy = noisy
        self._noise = NoiseModel(self.params)

    # -- protocol-specific hooks ------------------------------------------------

    @abstractmethod
    def _prepare_inputs(
        self, a: BellDiagonalState, b: BellDiagonalState
    ) -> tuple[BellDiagonalState, BellDiagonalState]:
        """Apply the protocol's pre-rotation / twirl to the two input pairs."""

    @abstractmethod
    def _finalise_output(self, state: BellDiagonalState) -> BellDiagonalState:
        """Apply the protocol's post-processing (e.g. BBPSSW's output twirl)."""

    # -- core recurrence ---------------------------------------------------------

    def round(self, a: BellDiagonalState, b: BellDiagonalState) -> PurificationOutcome:
        """Perform one purification round combining pairs ``a`` and ``b``."""
        a_in, b_in = self._prepare_inputs(a, b)
        if self.noisy:
            a_in = self._noise.purification_pre_noise(a_in)
            b_in = self._noise.purification_pre_noise(b_in)
        success, fail, n_success = _bilateral_cnot_branches(a_in, b_in)
        flip = self._noise.measurement_flip_probability(2) if self.noisy else 0.0
        accept_prob = (1.0 - flip) * n_success + flip * (1.0 - n_success)
        if accept_prob <= 0.0:
            raise InfeasibleError(
                f"{self.name} purification round has zero acceptance probability"
            )
        mixed = [
            (1.0 - flip) * s + flip * f for s, f in zip(success, fail)
        ]
        state = BellDiagonalState.from_coefficients(mixed)
        state = self._finalise_output(state)
        return PurificationOutcome(state=state, success_probability=accept_prob)

    def purify_identical(self, state: BellDiagonalState) -> PurificationOutcome:
        """One round applied to two identical copies of ``state`` (tree level)."""
        return self.round(state, state)

    def iterate(self, state: BellDiagonalState, rounds: int) -> List[PurificationOutcome]:
        """Apply ``rounds`` successive tree levels starting from ``state``.

        Level ``k`` purifies two copies of the level ``k - 1`` output, which is
        the tree-structured usage of Figure 8 / Section 4.7.
        """
        if rounds < 0:
            raise ConfigurationError(f"rounds must be non-negative, got {rounds}")
        outcomes: List[PurificationOutcome] = []
        current = state
        for _ in range(rounds):
            outcome = self.purify_identical(current)
            outcomes.append(outcome)
            current = outcome.state
        return outcomes

    def fidelity_after_rounds(self, state: BellDiagonalState, rounds: int) -> float:
        """Fidelity of the surviving pair after ``rounds`` tree levels."""
        if rounds == 0:
            return state.fidelity
        return self.iterate(state, rounds)[-1].fidelity

    def error_series(self, state: BellDiagonalState, rounds: int) -> List[float]:
        """Error (1 - fidelity) after 0..rounds tree levels (Figure 8 series)."""
        series = [state.error]
        current = state
        for _ in range(rounds):
            outcome = self.purify_identical(current)
            current = outcome.state
            series.append(current.error)
        return series

    def rounds_to_fidelity(
        self,
        state: BellDiagonalState,
        target_fidelity: float,
        *,
        max_rounds: int = 30,
    ) -> Optional[int]:
        """Minimum number of rounds to reach ``target_fidelity``, or None.

        Returns ``None`` when the protocol's maximum achievable fidelity under
        the configured noise is below the target (the Figure 12 breakdown
        regime) within ``max_rounds`` rounds.
        """
        if state.fidelity >= target_fidelity:
            return 0
        current = state
        best = current.fidelity
        for rounds in range(1, max_rounds + 1):
            current = self.purify_identical(current).state
            if current.fidelity >= target_fidelity:
                return rounds
            if current.fidelity <= best + 1e-15:
                # No further progress: we've hit the noise floor below target.
                return None
            best = current.fidelity
        return None

    def max_achievable_fidelity(
        self, state: BellDiagonalState, *, max_rounds: int = _MAX_SEARCH_ROUNDS
    ) -> float:
        """Highest fidelity reachable from ``state`` under the noise model."""
        current = state
        best = current.fidelity
        for _ in range(max_rounds):
            current = self.purify_identical(current).state
            if current.fidelity <= best + 1e-15:
                return best
            best = current.fidelity
        return best


class DEJMPSProtocol(PurificationProtocol):
    """Deutsch et al. (DEJMPS) recurrence protocol.

    The protocol's local rotations exchange the ``psi_minus`` and ``phi_minus``
    (Y and Z type) error components before the bilateral CNOT, so the error
    component the bare recurrence fails to suppress is rotated into a
    suppressed slot on the following round.  Convergence is roughly quadratic
    and the maximum fidelity is limited only by the local-operation noise.
    """

    name = "DEJMPS"

    def _prepare_inputs(self, a: BellDiagonalState, b: BellDiagonalState):
        a_rot = a.permute_errors((0, 2, 1))
        b_rot = b.permute_errors((0, 2, 1))
        if self.noisy:
            # The rotation itself is a pair of single-qubit gates on each pair.
            a_rot = a_rot.local_depolarize(self.params.errors.one_qubit_gate)
            b_rot = b_rot.local_depolarize(self.params.errors.one_qubit_gate)
        return a_rot, b_rot

    def _finalise_output(self, state: BellDiagonalState) -> BellDiagonalState:
        return state


class BBPSSWProtocol(PurificationProtocol):
    """Bennett et al. (BBPSSW) recurrence protocol.

    Inputs are twirled into Werner form before the bilateral CNOT and the
    output is twirled again, which partially randomises the state every round
    (the paper's explanation for its slower convergence and lower maximum
    fidelity).
    """

    name = "BBPSSW"

    def _prepare_inputs(self, a: BellDiagonalState, b: BellDiagonalState):
        a_w = BellDiagonalState.werner(a.fidelity)
        b_w = BellDiagonalState.werner(b.fidelity)
        if self.noisy:
            # Twirling is implemented with random local rotations; charge one
            # single-qubit gate per half, matching the DEJMPS accounting.
            a_w = a_w.local_depolarize(self.params.errors.one_qubit_gate)
            b_w = b_w.local_depolarize(self.params.errors.one_qubit_gate)
        return a_w, b_w

    def _finalise_output(self, state: BellDiagonalState) -> BellDiagonalState:
        return BellDiagonalState.werner(state.fidelity)


_PROTOCOLS = {
    "dejmps": DEJMPSProtocol,
    "bbpssw": BBPSSWProtocol,
}


def get_protocol(
    name: str,
    params: IonTrapParameters | None = None,
    *,
    noisy: bool = True,
) -> PurificationProtocol:
    """Construct a purification protocol by name ("dejmps" or "bbpssw")."""
    key = name.strip().lower()
    if key not in _PROTOCOLS:
        raise ConfigurationError(
            f"unknown purification protocol {name!r}; expected one of {sorted(_PROTOCOLS)}"
        )
    return _PROTOCOLS[key](params, noisy=noisy)
