"""Teleportation transport model (paper Section 4.4, Eqs. 3 and 5).

Teleportation consumes a pre-distributed EPR pair to move a qubit's state
without physically transporting the ion.  The fidelity of the teleported state
depends on the fidelity of the state going in (``F_old``), the fidelity of the
EPR pair used (``F_EPR``) and the error rates of the local operations:

    F_new = 1/4 * (1 + 3 (1-p_1q)(1-p_2q) * (4(1-p_ms)^2 - 1)/3
                       * (4 F_old - 1)(4 F_EPR - 1) / 9)            (Eq. 3)

Latency (Eq. 5) is two one-qubit gates, one two-qubit gate, a measurement, and
the classical transmission of two bits over the channel distance.
"""

from __future__ import annotations

from typing import Iterable, List

from ..errors import ConfigurationError
from .fidelity import clamp_fidelity, validate_fidelity
from .gates import NoiseModel
from .parameters import IonTrapParameters
from .states import BellDiagonalState


def teleportation_fidelity(
    fidelity_in: float,
    epr_fidelity: float,
    params: IonTrapParameters | None = None,
) -> float:
    """Fidelity of a state after one teleportation (Eq. 3)."""
    params = params or IonTrapParameters.default()
    f_old = validate_fidelity(fidelity_in, name="fidelity_in")
    f_epr = validate_fidelity(epr_fidelity, name="epr_fidelity")
    p1q = params.errors.one_qubit_gate
    p2q = params.errors.two_qubit_gate
    pms = params.errors.measure
    gate_factor = (1.0 - p1q) * (1.0 - p2q)
    measure_factor = (4.0 * (1.0 - pms) ** 2 - 1.0) / 3.0
    werner_product = (4.0 * f_old - 1.0) * (4.0 * f_epr - 1.0) / 9.0
    return clamp_fidelity(0.25 * (1.0 + 3.0 * gate_factor * measure_factor * werner_product))


def teleportation_time(
    distance_cells: float = 0.0,
    params: IonTrapParameters | None = None,
) -> float:
    """Latency of one teleportation (Eq. 5), assuming the EPR pair is in place."""
    params = params or IonTrapParameters.default()
    if distance_cells < 0:
        raise ConfigurationError(f"distance_cells must be non-negative, got {distance_cells}")
    return params.times.teleport(distance_cells)


def teleport_state(
    state: BellDiagonalState,
    epr_state: BellDiagonalState,
    params: IonTrapParameters | None = None,
) -> BellDiagonalState:
    """Teleport a Bell-diagonal *pair* state through an EPR resource pair.

    This is the state-level version of Eq. 3 used for chained teleportation of
    EPR pairs: the pair being forwarded (``state``) has one half teleported
    through the link pair (``epr_state``).  Pauli errors on the link pair
    translate into Pauli errors on the forwarded half, so the error
    coefficients combine through the group structure of the Bell basis; gate
    and measurement imperfections add a small depolarising contribution.
    """
    params = params or IonTrapParameters.default()
    noise = NoiseModel(params)
    combined = _compose_bell_errors(state, epr_state)
    return noise.teleport_operation_noise(combined)


def _compose_bell_errors(a: BellDiagonalState, b: BellDiagonalState) -> BellDiagonalState:
    """Compose Pauli error distributions of two Bell-diagonal states.

    Teleporting one half of pair ``a`` through pair ``b`` applies, up to the
    ideal correction, the Pauli error of ``b`` on top of the error of ``a``.
    The Bell-basis labels form the group Z2 x Z2 under this composition:
    index 0 = I, 1 = X, 2 = Y, 3 = Z with Y = X.Z.
    """
    pa = a.coefficients
    pb = b.coefficients
    # Composition table for (I, X, Y, Z) labels: result index of applying j after i.
    table = (
        (0, 1, 2, 3),
        (1, 0, 3, 2),
        (2, 3, 0, 1),
        (3, 2, 1, 0),
    )
    out = [0.0, 0.0, 0.0, 0.0]
    for i in range(4):
        # lint-ok: FLT001 -- exact-zero skip of an absent Bell term; any nonzero
        # coefficient must contribute, so a toleranced check would change algebra
        if pa[i] == 0.0:
            continue
        for j in range(4):
            # lint-ok: FLT001 -- same exact-zero term skip as the outer loop
            if pb[j] == 0.0:
                continue
            out[table[i][j]] += pa[i] * pb[j]
    return BellDiagonalState.from_coefficients(out)


def chained_teleportation_fidelity(
    initial_fidelity: float,
    hops: int,
    link_fidelity: float,
    params: IonTrapParameters | None = None,
) -> float:
    """Fidelity of an EPR pair after ``hops`` chained teleportations.

    Each hop applies Eq. 3 with ``F_EPR = link_fidelity`` (the fidelity of the
    virtual-wire pair spanning that hop).  This is the model behind Figure 9.
    """
    params = params or IonTrapParameters.default()
    if hops < 0:
        raise ConfigurationError(f"hops must be non-negative, got {hops}")
    fidelity = validate_fidelity(initial_fidelity, name="initial_fidelity")
    link = validate_fidelity(link_fidelity, name="link_fidelity")
    for _ in range(hops):
        fidelity = teleportation_fidelity(fidelity, link, params)
    return fidelity


def chained_teleportation_series(
    initial_fidelity: float,
    max_hops: int,
    link_fidelity: float,
    params: IonTrapParameters | None = None,
) -> List[float]:
    """Fidelity after 0..max_hops chained teleportations (Figure 9 series)."""
    params = params or IonTrapParameters.default()
    if max_hops < 0:
        raise ConfigurationError(f"max_hops must be non-negative, got {max_hops}")
    series = [validate_fidelity(initial_fidelity, name="initial_fidelity")]
    fidelity = series[0]
    for _ in range(max_hops):
        fidelity = teleportation_fidelity(fidelity, link_fidelity, params)
        series.append(fidelity)
    return series


def chained_teleport_state(
    state: BellDiagonalState,
    link_states: Iterable[BellDiagonalState],
    params: IonTrapParameters | None = None,
) -> BellDiagonalState:
    """State-level chained teleportation through a sequence of link pairs."""
    params = params or IonTrapParameters.default()
    out = state
    for link in link_states:
        out = teleport_state(out, link, params)
    return out
