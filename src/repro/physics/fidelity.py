"""Fidelity helpers.

The paper measures every channel by the *fidelity* of the states it delivers,
with ``error = 1 - fidelity``.  These helpers centralise validation and the
Werner-parameter algebra used by the analytical teleportation model (Eq. 3),
where fidelity appears through the combination ``(4F - 1) / 3``.
"""

from __future__ import annotations

import math

from ..errors import FidelityError


def validate_fidelity(fidelity: float, *, name: str = "fidelity") -> float:
    """Validate that ``fidelity`` is finite and lies in [0, 1]; return it as a float.

    Non-finite inputs (NaN, +/-inf) are rejected explicitly: NaN compares
    False against every bound, so a bare range check cannot be trusted to
    classify it, and letting NaN through would poison every downstream
    Werner-algebra product silently.
    """
    value = float(fidelity)
    if not math.isfinite(value):
        raise FidelityError(f"{name} must be finite, got {value}")
    if not (0.0 <= value <= 1.0):
        raise FidelityError(f"{name} must be in [0, 1], got {value}")
    return value


def validate_error(error: float, *, name: str = "error") -> float:
    """Validate that ``error`` is finite and lies in [0, 1]; return it as a float."""
    value = float(error)
    if not math.isfinite(value):
        raise FidelityError(f"{name} must be finite, got {value}")
    if not (0.0 <= value <= 1.0):
        raise FidelityError(f"{name} must be in [0, 1], got {value}")
    return value


def fidelity_to_error(fidelity: float) -> float:
    """Convert a fidelity into an error probability (1 - fidelity)."""
    return 1.0 - validate_fidelity(fidelity)


def error_to_fidelity(error: float) -> float:
    """Convert an error probability into a fidelity (1 - error)."""
    return 1.0 - validate_error(error)


def werner_parameter(fidelity: float) -> float:
    """Return the Werner (singlet-fraction) parameter ``(4F - 1) / 3``.

    For a Werner state of fidelity ``F`` with respect to a maximally entangled
    reference state, this is the weight of the pure reference state in the
    ``rho = w |ref><ref| + (1 - w) I/4`` decomposition.  Eq. 3 of the paper is
    a product of such parameters.
    """
    return (4.0 * validate_fidelity(fidelity) - 1.0) / 3.0


def fidelity_from_werner_parameter(w: float) -> float:
    """Inverse of :func:`werner_parameter`."""
    if not math.isfinite(w):
        raise FidelityError(f"Werner parameter must be finite, got {w}")
    if not (-1.0 / 3.0 - 1e-12 <= w <= 1.0 + 1e-12):
        raise FidelityError(f"Werner parameter must be in [-1/3, 1], got {w}")
    return (3.0 * w + 1.0) / 4.0


def combine_werner(*fidelities: float) -> float:
    """Compose independent depolarising processes expressed as fidelities.

    The composed Werner parameter is the product of the individual ones; the
    returned value is the fidelity of the composition.  This is the "errors
    approximately add" rule the paper uses when reasoning about chained
    teleportation.
    """
    w = 1.0
    for fidelity in fidelities:
        w *= werner_parameter(fidelity)
    return fidelity_from_werner_parameter(w)


def clamp_fidelity(value: float) -> float:
    """Clamp a numerically noisy fidelity into [0, 1].

    Infinities clamp like any other out-of-range value; NaN is rejected
    because clamping cannot recover a direction from it.
    """
    if math.isnan(value):
        raise FidelityError("cannot clamp NaN to a fidelity")
    if value < 0.0:
        return 0.0
    if value > 1.0:
        return 1.0
    return value
