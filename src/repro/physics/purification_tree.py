"""Tree-structured purification cost model (paper Section 4.7).

A purification *tree* of depth ``r`` starts from ``2**r`` raw pairs of equal
fidelity; every level halves the pair count (and loses a further fraction to
failed rounds), so the expected number of raw input pairs per surviving output
pair is

    cost(r) = prod_{level k=1..r} 2 / P_success(k)

which is the "slightly more than 2**r" the paper quotes.  This module turns a
:class:`~repro.physics.purification.PurificationProtocol` trajectory into that
cost and into a :class:`PurificationSchedule` describing the full tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import ConfigurationError, InfeasibleError
from .parameters import IonTrapParameters
from .purification import PurificationOutcome, PurificationProtocol
from .states import BellDiagonalState


@dataclass(frozen=True)
class PurificationSchedule:
    """A planned purification tree.

    Attributes
    ----------
    rounds:
        Tree depth (number of levels).
    input_state:
        Bell-diagonal state of the raw pairs entering level 0.
    outcomes:
        Per-level outcomes (state and success probability).
    expected_input_pairs:
        Expected raw pairs consumed per surviving output pair.
    """

    rounds: int
    input_state: BellDiagonalState
    outcomes: tuple
    expected_input_pairs: float

    @property
    def output_state(self) -> BellDiagonalState:
        """State of the surviving pair at the top of the tree."""
        if not self.outcomes:
            return self.input_state
        return self.outcomes[-1].state

    @property
    def output_fidelity(self) -> float:
        return self.output_state.fidelity

    @property
    def output_error(self) -> float:
        return self.output_state.error

    @property
    def total_latency_us(self) -> float:
        """Serial latency of the tree when one purifier per level is available.

        Each level is one purification round; a queue purifier (Figure 14)
        executes the ``2**r - 1`` constituent rounds with depth-``r`` pipeline
        latency, so the steady-state latency seen by one output pair is
        ``rounds`` round-times.  Classical-communication distance is added by
        the caller, which knows the channel length.
        """
        return float(self.rounds)

    def describe(self) -> str:
        lines = [
            f"PurificationSchedule(rounds={self.rounds}, "
            f"input_error={self.input_state.error:.3e}, "
            f"output_error={self.output_error:.3e}, "
            f"expected_input_pairs={self.expected_input_pairs:.2f})"
        ]
        for level, outcome in enumerate(self.outcomes, start=1):
            lines.append(
                f"  level {level}: error={outcome.error:.3e} "
                f"p_success={outcome.success_probability:.4f}"
            )
        return "\n".join(lines)


def expected_pairs_for_rounds(outcomes: List[PurificationOutcome]) -> float:
    """Expected raw input pairs per output pair for a sequence of tree levels."""
    cost = 1.0
    for outcome in outcomes:
        if outcome.success_probability <= 0.0:
            return float("inf")
        cost *= 2.0 / outcome.success_probability
    return cost


def build_schedule(
    protocol: PurificationProtocol,
    input_state: BellDiagonalState,
    rounds: int,
) -> PurificationSchedule:
    """Build the schedule for a fixed number of tree levels."""
    if rounds < 0:
        raise ConfigurationError(f"rounds must be non-negative, got {rounds}")
    outcomes = protocol.iterate(input_state, rounds)
    return PurificationSchedule(
        rounds=rounds,
        input_state=input_state,
        outcomes=tuple(outcomes),
        expected_input_pairs=expected_pairs_for_rounds(outcomes),
    )


def schedule_to_threshold(
    protocol: PurificationProtocol,
    input_state: BellDiagonalState,
    *,
    target_fidelity: Optional[float] = None,
    params: IonTrapParameters | None = None,
    max_rounds: int = 30,
) -> PurificationSchedule:
    """Smallest purification tree that lifts ``input_state`` above threshold.

    Raises :class:`InfeasibleError` when the protocol cannot reach the target
    under its noise model (the breakdown regime of Figure 12).
    """
    params = params or protocol.params
    target = params.threshold_fidelity if target_fidelity is None else target_fidelity
    rounds = protocol.rounds_to_fidelity(input_state, target, max_rounds=max_rounds)
    if rounds is None:
        raise InfeasibleError(
            f"{protocol.name} cannot purify error {input_state.error:.3e} "
            f"to target error {1.0 - target:.3e} under the configured noise"
        )
    return build_schedule(protocol, input_state, rounds)


def hardware_purifiers_for_tree(rounds: int, *, queue_based: bool = True) -> int:
    """Number of hardware purifier units needed for a depth-``rounds`` tree.

    A naive tree purifier dedicates one unit per internal node (``2**r - 1``);
    the paper's queue purifier (Figure 14) needs only one unit per level.
    """
    if rounds < 0:
        raise ConfigurationError(f"rounds must be non-negative, got {rounds}")
    if rounds == 0:
        return 0
    if queue_based:
        return rounds
    return 2 ** rounds - 1
