"""Ballistic transport model (paper Section 4.3, Eqs. 1 and 2).

Ballistic movement shuttles an ion through a chain of traps by pulsing
electrodes.  Every cell traversed is an independent chance of decohering, so
fidelity decays geometrically with distance while latency grows linearly.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .fidelity import validate_fidelity
from .parameters import IonTrapParameters
from .states import BellDiagonalState


def ballistic_fidelity(
    fidelity_in: float,
    distance_cells: float,
    params: IonTrapParameters | None = None,
) -> float:
    """Fidelity after ballistically moving a qubit over ``distance_cells`` cells.

    Implements Eq. 1: ``F_new = F_old * (1 - p_mv) ** D``.
    """
    params = params or IonTrapParameters.default()
    f_in = validate_fidelity(fidelity_in, name="fidelity_in")
    if distance_cells < 0:
        raise ConfigurationError(f"distance_cells must be non-negative, got {distance_cells}")
    return f_in * (1.0 - params.errors.move_cell) ** distance_cells


def ballistic_error(
    error_in: float,
    distance_cells: float,
    params: IonTrapParameters | None = None,
) -> float:
    """Error (1 - fidelity) after ballistic movement; convenience wrapper."""
    return 1.0 - ballistic_fidelity(1.0 - error_in, distance_cells, params)


def ballistic_time(distance_cells: float, params: IonTrapParameters | None = None) -> float:
    """Latency of a ballistic move over ``distance_cells`` cells (Eq. 2)."""
    params = params or IonTrapParameters.default()
    if distance_cells < 0:
        raise ConfigurationError(f"distance_cells must be non-negative, got {distance_cells}")
    return params.times.ballistic(distance_cells)


def ballistic_move_state(
    state: BellDiagonalState,
    distance_cells: float,
    params: IonTrapParameters | None = None,
) -> BellDiagonalState:
    """Apply ballistic-movement decoherence to a Bell-diagonal pair state.

    The movement error acts on whichever half of the pair is being shuttled;
    per Eq. 1 the surviving weight of the reference state decays by
    ``(1 - p_mv) ** D`` and the loss is spread across the error components.
    """
    params = params or IonTrapParameters.default()
    if distance_cells < 0:
        raise ConfigurationError(f"distance_cells must be non-negative, got {distance_cells}")
    return state.movement_decay(params.errors.move_cell, distance_cells)


def max_ballistic_distance(
    error_budget: float,
    params: IonTrapParameters | None = None,
) -> int:
    """Largest whole number of cells movable without exceeding ``error_budget``.

    Useful for sizing how far a data qubit may be shuttled before error
    correction must intervene (Section 2.3's motivation for teleportation).
    """
    params = params or IonTrapParameters.default()
    if not (0.0 < error_budget < 1.0):
        raise ConfigurationError(f"error_budget must be in (0, 1), got {error_budget}")
    p = params.errors.move_cell
    if p <= 0.0:
        raise ConfigurationError("move_cell error must be positive to bound distance")
    import math

    # (1 - p) ** D >= 1 - budget  =>  D <= log(1 - budget) / log(1 - p)
    return int(math.floor(math.log(1.0 - error_budget) / math.log(1.0 - p)))
