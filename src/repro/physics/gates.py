"""Noisy gate and measurement channels acting on EPR pair states.

The purification and teleportation models need a consistent treatment of how
imperfect local operations degrade the Bell-diagonal pairs they act on.  The
paper's constants (Table 2) give per-operation error probabilities; here we
translate them into channels on :class:`~repro.physics.states.BellDiagonalState`.

The modelling choices (standard in the entanglement-purification literature,
e.g. Dur/Briegel):

* a noisy one-qubit gate on one half of a pair = ideal gate followed by a
  single-qubit depolarising channel with probability ``p_1q``;
* a noisy two-qubit gate touching one half of a pair = ideal gate followed by
  a depolarising channel on the pair with probability ``p_2q``;
* a noisy measurement reports the wrong outcome with probability ``p_ms``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .parameters import IonTrapParameters
from .states import BellDiagonalState


@dataclass(frozen=True)
class NoiseModel:
    """Bundle of channel applications derived from :class:`IonTrapParameters`."""

    params: IonTrapParameters

    def after_one_qubit_gate(self, state: BellDiagonalState) -> BellDiagonalState:
        """Pair state after a noisy one-qubit gate on one of its halves."""
        return state.local_depolarize(self.params.errors.one_qubit_gate)

    def after_two_qubit_gate(self, state: BellDiagonalState) -> BellDiagonalState:
        """Pair state after a noisy two-qubit gate involving one of its halves."""
        return state.depolarize(self.params.errors.two_qubit_gate)

    def after_movement(self, state: BellDiagonalState, cells: float) -> BellDiagonalState:
        """Pair state after ballistically moving one half over ``cells`` cells."""
        return state.movement_decay(self.params.errors.move_cell, cells)

    def measurement_flip_probability(self, measurements: int = 1) -> float:
        """Probability that an odd number of ``measurements`` outcomes is wrong.

        For the two-sided parity comparison used in purification the relevant
        failure is exactly one of the two measurement results being flipped.
        """
        p = self.params.errors.measure
        if measurements <= 0:
            return 0.0
        # Probability of an odd number of flips among `measurements` trials.
        return 0.5 * (1.0 - (1.0 - 2.0 * p) ** measurements)

    def purification_pre_noise(self, state: BellDiagonalState, *, rotations: int = 1) -> BellDiagonalState:
        """Noise applied to each input pair before the purification CNOTs.

        Each purification round applies ``rotations`` single-qubit rotations to
        each half (DEJMPS uses one per half; BBPSSW's twirl is accounted for
        separately), one bilateral two-qubit gate touching the pair, and a few
        cells of shuttling to bring the two pairs adjacent inside the purifier.
        """
        out = state
        for _ in range(max(rotations, 0)):
            out = out.local_depolarize(self.params.errors.one_qubit_gate)
            out = out.local_depolarize(self.params.errors.one_qubit_gate)
        out = out.depolarize(self.params.errors.two_qubit_gate)
        if self.params.purify_move_cells:
            out = out.movement_decay(self.params.errors.move_cell, self.params.purify_move_cells)
        return out

    def teleport_operation_noise(self, state: BellDiagonalState) -> BellDiagonalState:
        """Noise on a pair consumed as the resource of one teleportation.

        A teleportation uses one two-qubit gate, two one-qubit gates and two
        measurements (Eq. 5).  The measurements only affect the classical
        correction, which we fold in as an additional depolarising weight.
        """
        out = state.local_depolarize(self.params.errors.one_qubit_gate)
        out = out.local_depolarize(self.params.errors.one_qubit_gate)
        out = out.depolarize(self.params.errors.two_qubit_gate)
        flip = self.measurement_flip_probability(2)
        return out.depolarize(flip)
