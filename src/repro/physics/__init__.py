"""Ion-trap physics substrate: fidelity, timing and purification models.

This subpackage implements the analytical models of Section 4 of the paper:

* :mod:`repro.physics.constants` — the Table 1 / Table 2 constants and the
  fault-tolerance threshold.
* :mod:`repro.physics.parameters` — a validated parameter bundle
  (:class:`IonTrapParameters`) used by every other model.
* :mod:`repro.physics.states` — Bell-diagonal / Werner state algebra.
* :mod:`repro.physics.ballistic` — Eq. 1 / Eq. 2 ballistic transport.
* :mod:`repro.physics.epr` — Eq. 4 EPR-pair generation.
* :mod:`repro.physics.teleportation` — Eq. 3 / Eq. 5 teleportation.
* :mod:`repro.physics.purification` — DEJMPS and BBPSSW recurrence protocols.
* :mod:`repro.physics.purification_tree` — tree / queue purification cost.
"""

from .constants import (
    DEFAULT_ERROR_RATES,
    DEFAULT_OPERATION_TIMES,
    THRESHOLD_ERROR,
    THRESHOLD_FIDELITY,
)
from .parameters import ErrorRates, IonTrapParameters, OperationTimes
from .fidelity import error_to_fidelity, fidelity_to_error, validate_fidelity
from .states import BellDiagonalState, WernerState
from .ballistic import ballistic_fidelity, ballistic_move_state, ballistic_time
from .epr import EPRPair, generation_fidelity, generation_time, generate_pair
from .teleportation import (
    chained_teleportation_fidelity,
    teleportation_fidelity,
    teleportation_time,
    teleport_state,
)
from .purification import (
    BBPSSWProtocol,
    DEJMPSProtocol,
    PurificationOutcome,
    PurificationProtocol,
    get_protocol,
)
from .purification_tree import PurificationSchedule, expected_pairs_for_rounds, schedule_to_threshold

__all__ = [
    "BBPSSWProtocol",
    "BellDiagonalState",
    "DEFAULT_ERROR_RATES",
    "DEFAULT_OPERATION_TIMES",
    "DEJMPSProtocol",
    "EPRPair",
    "ErrorRates",
    "IonTrapParameters",
    "OperationTimes",
    "PurificationOutcome",
    "PurificationProtocol",
    "PurificationSchedule",
    "THRESHOLD_ERROR",
    "THRESHOLD_FIDELITY",
    "WernerState",
    "ballistic_fidelity",
    "ballistic_move_state",
    "ballistic_time",
    "chained_teleportation_fidelity",
    "error_to_fidelity",
    "expected_pairs_for_rounds",
    "fidelity_to_error",
    "generate_pair",
    "generation_fidelity",
    "generation_time",
    "get_protocol",
    "schedule_to_threshold",
    "teleport_state",
    "teleportation_fidelity",
    "teleportation_time",
    "validate_fidelity",
]
