"""Validated parameter bundles for the ion-trap models.

Every analytical model and the simulator take an :class:`IonTrapParameters`
instance, which bundles the Table 1 operation times and Table 2 error rates
plus the geometric overheads that the paper's router and purifier designs
introduce (intra-router movement, per-round shuttling, endpoint local moves).

Two constructors matter for reproducing the paper's figures:

* :meth:`IonTrapParameters.default` — the paper's Table 1 / Table 2 values.
* :meth:`IonTrapParameters.uniform_error` — all four error probabilities set
  to a single value, used for the sensitivity sweep of Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import ConfigurationError
from . import constants as C


def _check_probability(name: str, value: float) -> None:
    if not (0.0 <= value < 1.0):
        raise ConfigurationError(f"{name} must be a probability in [0, 1), got {value}")


def _check_positive(name: str, value: float) -> None:
    if value <= 0.0:
        raise ConfigurationError(f"{name} must be positive, got {value}")


def _check_non_negative(name: str, value: float) -> None:
    if value < 0.0:
        raise ConfigurationError(f"{name} must be non-negative, got {value}")


@dataclass(frozen=True)
class OperationTimes:
    """Operation latencies in microseconds (paper Table 1)."""

    one_qubit_gate: float = C.T_ONE_QUBIT_GATE_US
    two_qubit_gate: float = C.T_TWO_QUBIT_GATE_US
    move_cell: float = C.T_MOVE_CELL_US
    measure: float = C.T_MEASURE_US
    classical_per_cell: float = C.T_CLASSICAL_PER_CELL_US

    def __post_init__(self) -> None:
        _check_positive("one_qubit_gate", self.one_qubit_gate)
        _check_positive("two_qubit_gate", self.two_qubit_gate)
        _check_positive("move_cell", self.move_cell)
        _check_positive("measure", self.measure)
        _check_non_negative("classical_per_cell", self.classical_per_cell)

    @property
    def generate(self) -> float:
        """EPR generation time (one- plus two-qubit gate plus measurement check).

        The paper's Table 1 lists ~122 us, which is one single-qubit gate, one
        two-qubit gate and a verification measurement; the derived value here
        reproduces that total with the default constants.
        """
        return self.one_qubit_gate + self.two_qubit_gate + self.measure + 1.0

    def teleport(self, distance_cells: float = 0.0) -> float:
        """Teleportation latency (Eq. 5): local ops, measurement and classical bits."""
        _check_non_negative("distance_cells", distance_cells)
        return (
            2.0 * self.one_qubit_gate
            + self.two_qubit_gate
            + self.measure
            + self.classical_per_cell * distance_cells
        )

    def purify_round(self, distance_cells: float = 0.0) -> float:
        """One purification round (Eq. 6): two-qubit gate, measurement, classical bit."""
        _check_non_negative("distance_cells", distance_cells)
        return self.two_qubit_gate + self.measure + self.classical_per_cell * distance_cells

    def ballistic(self, distance_cells: float) -> float:
        """Ballistic movement latency (Eq. 2)."""
        _check_non_negative("distance_cells", distance_cells)
        return self.move_cell * distance_cells

    def classical(self, distance_cells: float) -> float:
        """Classical bit transmission latency over ``distance_cells``."""
        _check_non_negative("distance_cells", distance_cells)
        return self.classical_per_cell * distance_cells


@dataclass(frozen=True)
class ErrorRates:
    """Per-operation error probabilities (paper Table 2)."""

    one_qubit_gate: float = C.P_ONE_QUBIT_GATE
    two_qubit_gate: float = C.P_TWO_QUBIT_GATE
    move_cell: float = C.P_MOVE_CELL
    measure: float = C.P_MEASURE

    def __post_init__(self) -> None:
        _check_probability("one_qubit_gate", self.one_qubit_gate)
        _check_probability("two_qubit_gate", self.two_qubit_gate)
        _check_probability("move_cell", self.move_cell)
        _check_probability("measure", self.measure)

    @classmethod
    def uniform(cls, error: float) -> "ErrorRates":
        """All four error probabilities set to ``error`` (Figure 12 sweep)."""
        return cls(
            one_qubit_gate=error,
            two_qubit_gate=error,
            move_cell=error,
            measure=error,
        )

    def scaled(self, factor: float) -> "ErrorRates":
        """Return a copy with every probability multiplied by ``factor``.

        Values are clipped just below 1 so the result remains a valid
        probability set; useful for "what if the hardware were k times worse"
        studies.
        """
        if factor < 0:
            raise ConfigurationError(f"factor must be non-negative, got {factor}")
        clip = 1.0 - 1e-12

        def _s(p: float) -> float:
            return min(p * factor, clip)

        return ErrorRates(
            one_qubit_gate=_s(self.one_qubit_gate),
            two_qubit_gate=_s(self.two_qubit_gate),
            move_cell=_s(self.move_cell),
            measure=_s(self.measure),
        )


@dataclass(frozen=True)
class IonTrapParameters:
    """Complete parameter bundle for the communication models.

    Attributes
    ----------
    times:
        Operation latencies (Table 1).
    errors:
        Operation error probabilities (Table 2).
    zero_prep_fidelity:
        Fidelity of a freshly initialised qubit used for EPR generation
        (the ``F_zero`` of Eq. 4).
    cells_per_hop:
        Ballistic cells spanned by one teleportation hop (virtual-wire length),
        ~600 in the paper.
    router_overhead_cells:
        Cells of intra-router ballistic movement per hop (Figure 6 storage and
        turn moves).
    purify_move_cells:
        Cells of shuttling per purification round inside a purifier node.
    endpoint_local_cells:
        Cells between an endpoint T' node and the logical-qubit site it serves.
    threshold_error:
        Fault-tolerance threshold on (1 - fidelity) for data qubits and for any
        EPR pair that interacts with data.
    """

    times: OperationTimes = field(default_factory=OperationTimes)
    errors: ErrorRates = field(default_factory=ErrorRates)
    zero_prep_fidelity: float = C.DEFAULT_ZERO_PREP_FIDELITY
    cells_per_hop: int = 600
    router_overhead_cells: int = C.DEFAULT_ROUTER_OVERHEAD_CELLS
    purify_move_cells: int = C.DEFAULT_PURIFY_MOVE_CELLS
    endpoint_local_cells: int = C.DEFAULT_ENDPOINT_LOCAL_CELLS
    threshold_error: float = C.THRESHOLD_ERROR

    def __post_init__(self) -> None:
        if not (0.0 < self.zero_prep_fidelity <= 1.0):
            raise ConfigurationError(
                f"zero_prep_fidelity must be in (0, 1], got {self.zero_prep_fidelity}"
            )
        if self.cells_per_hop <= 0:
            raise ConfigurationError(f"cells_per_hop must be positive, got {self.cells_per_hop}")
        for name in ("router_overhead_cells", "purify_move_cells", "endpoint_local_cells"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative, got {getattr(self, name)}")
        if not (0.0 < self.threshold_error < 1.0):
            raise ConfigurationError(
                f"threshold_error must be in (0, 1), got {self.threshold_error}"
            )

    # -- constructors -------------------------------------------------------

    @classmethod
    def default(cls) -> "IonTrapParameters":
        """The paper's Table 1 / Table 2 parameter set."""
        return cls()

    @classmethod
    def uniform_error(
        cls,
        error: float,
        *,
        include_preparation: bool = True,
        **overrides: object,
    ) -> "IonTrapParameters":
        """All operation error probabilities set to ``error`` (Figure 12).

        When ``include_preparation`` is True (the default, matching the
        paper's "error rate of all operations" sweep) the zero-state
        preparation used for EPR generation is degraded by the same rate.
        """
        if include_preparation and "zero_prep_fidelity" not in overrides:
            overrides["zero_prep_fidelity"] = max(1.0 - error, 0.0)
        return cls(errors=ErrorRates.uniform(error), **overrides)  # type: ignore[arg-type]

    # -- convenience accessors ----------------------------------------------

    @property
    def threshold_fidelity(self) -> float:
        """Minimum acceptable fidelity for data-facing EPR pairs."""
        return 1.0 - self.threshold_error

    def with_errors(self, errors: ErrorRates) -> "IonTrapParameters":
        """Return a copy with a different error-rate bundle."""
        return replace(self, errors=errors)

    def with_times(self, times: OperationTimes) -> "IonTrapParameters":
        """Return a copy with a different timing bundle."""
        return replace(self, times=times)

    def with_hop_cells(self, cells_per_hop: int) -> "IonTrapParameters":
        """Return a copy with a different virtual-wire hop length."""
        return replace(self, cells_per_hop=cells_per_hop)

    def describe(self) -> str:
        """Human-readable multi-line description of the parameter set."""
        lines = [
            "IonTrapParameters",
            f"  one-qubit gate : {self.times.one_qubit_gate:g} us, p={self.errors.one_qubit_gate:g}",
            f"  two-qubit gate : {self.times.two_qubit_gate:g} us, p={self.errors.two_qubit_gate:g}",
            f"  move one cell  : {self.times.move_cell:g} us, p={self.errors.move_cell:g}",
            f"  measure        : {self.times.measure:g} us, p={self.errors.measure:g}",
            f"  generate       : {self.times.generate:g} us",
            f"  teleport       : {self.times.teleport():g} us (+classical)",
            f"  purify round   : {self.times.purify_round():g} us (+classical)",
            f"  cells per hop  : {self.cells_per_hop}",
            f"  threshold error: {self.threshold_error:g}",
        ]
        return "\n".join(lines)


DEFAULT_PARAMETERS = IonTrapParameters.default()
