"""Fault-tolerance threshold bookkeeping (paper Section 4.6).

The threshold theorem for local fault-tolerant computation requires data-qubit
fidelity to stay above ``1 - 7.5e-5``.  Because data qubits interact with the
EPR pairs used to teleport them, the same bound is imposed on delivered EPR
pairs.  This module centralises the checks.
"""

from __future__ import annotations

from dataclasses import dataclass

from .constants import THRESHOLD_ERROR, THRESHOLD_FIDELITY
from .fidelity import validate_fidelity
from .parameters import IonTrapParameters
from .states import BellDiagonalState


@dataclass(frozen=True)
class ThresholdCheck:
    """Result of checking a fidelity against the fault-tolerance threshold."""

    fidelity: float
    threshold_fidelity: float

    @property
    def satisfied(self) -> bool:
        return self.fidelity >= self.threshold_fidelity

    @property
    def margin(self) -> float:
        """Positive margin means the fidelity exceeds the threshold."""
        return self.fidelity - self.threshold_fidelity

    @property
    def error(self) -> float:
        return 1.0 - self.fidelity

    def __bool__(self) -> bool:  # pragma: no cover - trivial
        return self.satisfied


def check_fidelity(
    fidelity: float, params: IonTrapParameters | None = None
) -> ThresholdCheck:
    """Check a bare fidelity value against the threshold."""
    threshold = THRESHOLD_FIDELITY if params is None else params.threshold_fidelity
    return ThresholdCheck(fidelity=validate_fidelity(fidelity), threshold_fidelity=threshold)


def check_state(
    state: BellDiagonalState, params: IonTrapParameters | None = None
) -> ThresholdCheck:
    """Check a Bell-diagonal state against the threshold."""
    return check_fidelity(state.fidelity, params)


def meets_threshold(fidelity: float, params: IonTrapParameters | None = None) -> bool:
    """True when ``fidelity`` satisfies the data-qubit threshold."""
    return check_fidelity(fidelity, params).satisfied


__all__ = [
    "THRESHOLD_ERROR",
    "THRESHOLD_FIDELITY",
    "ThresholdCheck",
    "check_fidelity",
    "check_state",
    "meets_threshold",
]
