"""Ion-trap technology constants from the paper (Tables 1 and 2).

Times are in microseconds, distances in cells (one ion trap), and error
values are probabilities per operation.  The fault-tolerance threshold is the
value quoted in Section 4.6 from the threshold theorem for local fault
tolerant computation: data qubit fidelity must stay above ``1 - 7.5e-5``.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Table 1: operation times (microseconds)
# --------------------------------------------------------------------------

#: One-qubit gate time, t_1q.
T_ONE_QUBIT_GATE_US = 1.0
#: Two-qubit gate time, t_2q.
T_TWO_QUBIT_GATE_US = 20.0
#: Ballistic movement through one cell (one ion trap), t_mv.
T_MOVE_CELL_US = 0.2
#: Measurement time, t_ms.
T_MEASURE_US = 100.0
#: EPR pair generation time, t_gen (Table 1 lists 122 us).
T_GENERATE_US = 122.0
#: Teleportation time excluding classical transmission, t_tprt (~122 us).
T_TELEPORT_US = 122.0
#: One purification round, t_prfy (~121 us).
T_PURIFY_US = 121.0

#: Classical bit transport speed, microseconds per cell.  The paper states
#: classical information moves "orders of magnitude faster than the quantum
#: operations"; we model it as 1000x faster than ballistic ion movement.
T_CLASSICAL_PER_CELL_US = T_MOVE_CELL_US / 1000.0

DEFAULT_OPERATION_TIMES = {
    "one_qubit_gate": T_ONE_QUBIT_GATE_US,
    "two_qubit_gate": T_TWO_QUBIT_GATE_US,
    "move_cell": T_MOVE_CELL_US,
    "measure": T_MEASURE_US,
    "generate": T_GENERATE_US,
    "teleport": T_TELEPORT_US,
    "purify": T_PURIFY_US,
    "classical_per_cell": T_CLASSICAL_PER_CELL_US,
}

# --------------------------------------------------------------------------
# Table 2: error probabilities
# --------------------------------------------------------------------------

#: One-qubit gate error probability, p_1q.
P_ONE_QUBIT_GATE = 1e-8
#: Two-qubit gate error probability, p_2q.
P_TWO_QUBIT_GATE = 1e-7
#: Error probability per cell of ballistic movement, p_mv.
P_MOVE_CELL = 1e-6
#: Measurement error probability, p_ms.
P_MEASURE = 1e-8

DEFAULT_ERROR_RATES = {
    "one_qubit_gate": P_ONE_QUBIT_GATE,
    "two_qubit_gate": P_TWO_QUBIT_GATE,
    "move_cell": P_MOVE_CELL,
    "measure": P_MEASURE,
}

# --------------------------------------------------------------------------
# Derived / auxiliary constants
# --------------------------------------------------------------------------

#: Fault-tolerance threshold expressed as an error (1 - fidelity).  Data
#: qubit fidelity (and therefore the fidelity of any EPR pair a data qubit
#: interacts with) must stay above 1 - 7.5e-5 (Svore et al., cited in §4.6).
THRESHOLD_ERROR = 7.5e-5
#: The same threshold expressed as a fidelity.
THRESHOLD_FIDELITY = 1.0 - THRESHOLD_ERROR

#: Default fidelity of a freshly initialised (zeroed) physical qubit before
#: EPR generation (the F_zero of Eq. 4).  The paper does not pin this number;
#: we calibrate it so that the endpoint purification depth at the simulated
#: distances is three rounds (Section 5.3 uses depth-3 queue purifiers and the
#: 392 = 2^3 x 49 pairs-per-logical-communication figure).
DEFAULT_ZERO_PREP_FIDELITY = 0.9995

#: Default number of ballistic cells a routed EPR qubit traverses inside each
#: router it passes through (storage area, turns between the X and Y
#: teleporter sets in Figure 6).  This is the per-hop movement overhead that
#: is independent of the virtual-wire link quality.
DEFAULT_ROUTER_OVERHEAD_CELLS = 20

#: Default number of ballistic cells moved per purification round (bringing
#: the two pairs adjacent inside a purifier node, Figure 14).
DEFAULT_PURIFY_MOVE_CELLS = 4

#: Default number of cells between a channel-endpoint T' node and the logical
#: qubit / purifier site it serves (the final local ballistic move).
DEFAULT_ENDPOINT_LOCAL_CELLS = 100
