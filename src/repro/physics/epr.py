"""EPR pair generation model (paper Section 4.4, Eq. 4).

A generator (G) node produces an EPR pair from two freshly initialised qubits
with one single-qubit and one two-qubit gate.  The resulting fidelity is

    F_gen ∝ (1 - p_1q) (1 - p_2q) F_zero

where ``F_zero`` is the fidelity of the zero-prepared inputs.  We also provide
an :class:`EPRPair` value object that carries the full Bell-diagonal state
plus provenance useful for the simulator (identity, generator location,
accumulated movement).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import count
from typing import Optional, Tuple

from .fidelity import validate_fidelity
from .parameters import IonTrapParameters
from .states import BellDiagonalState

_pair_ids = count()


def generation_fidelity(
    params: IonTrapParameters | None = None,
    zero_prep_fidelity: Optional[float] = None,
) -> float:
    """Fidelity of a freshly generated EPR pair (Eq. 4)."""
    params = params or IonTrapParameters.default()
    f_zero = params.zero_prep_fidelity if zero_prep_fidelity is None else zero_prep_fidelity
    f_zero = validate_fidelity(f_zero, name="zero_prep_fidelity")
    return (1.0 - params.errors.one_qubit_gate) * (1.0 - params.errors.two_qubit_gate) * f_zero


def generation_state(
    params: IonTrapParameters | None = None,
    zero_prep_fidelity: Optional[float] = None,
) -> BellDiagonalState:
    """Bell-diagonal state of a freshly generated EPR pair.

    The imperfection of the preparation is unbiased, so the generated state is
    Werner-like with fidelity :func:`generation_fidelity`.
    """
    return BellDiagonalState.werner(generation_fidelity(params, zero_prep_fidelity))


def generation_time(params: IonTrapParameters | None = None) -> float:
    """Time to generate one EPR pair (Table 1 lists ~122 us)."""
    params = params or IonTrapParameters.default()
    return params.times.generate


@dataclass(frozen=True)
class EPRPair:
    """A tracked EPR pair: Bell-diagonal state plus provenance.

    Attributes
    ----------
    state:
        Current Bell-diagonal state of the pair.
    pair_id:
        Monotonically increasing identifier assigned at generation; mirrors the
        classical ID packet the paper's G-node control attaches to each pair.
    generator:
        Optional label of the generator node that produced the pair.
    left_location / right_location:
        Optional labels of where each half currently resides.
    moved_cells:
        Total ballistic distance (cells) accumulated by both halves.
    teleport_hops:
        Number of chained teleportations the pair has undergone.
    purification_rounds:
        Number of successful purification rounds applied to the pair.
    """

    state: BellDiagonalState
    pair_id: int = field(default_factory=lambda: next(_pair_ids))
    generator: Optional[str] = None
    left_location: Optional[str] = None
    right_location: Optional[str] = None
    moved_cells: float = 0.0
    teleport_hops: int = 0
    purification_rounds: int = 0

    @property
    def fidelity(self) -> float:
        """Fidelity of the pair's current state."""
        return self.state.fidelity

    @property
    def error(self) -> float:
        """Error (1 - fidelity) of the pair's current state."""
        return self.state.error

    @property
    def locations(self) -> Tuple[Optional[str], Optional[str]]:
        """Current locations of the two halves."""
        return (self.left_location, self.right_location)

    def with_state(self, state: BellDiagonalState) -> "EPRPair":
        """Return a copy with a different quantum state."""
        return replace(self, state=state)

    def after_move(self, cells: float, params: IonTrapParameters | None = None) -> "EPRPair":
        """Return the pair after ballistically moving one half by ``cells``."""
        params = params or IonTrapParameters.default()
        new_state = self.state.movement_decay(params.errors.move_cell, cells)
        return replace(self, state=new_state, moved_cells=self.moved_cells + cells)

    def after_teleport_hop(self, state: BellDiagonalState) -> "EPRPair":
        """Return the pair after one chained-teleportation hop with ``state``."""
        return replace(self, state=state, teleport_hops=self.teleport_hops + 1)

    def after_purification(self, state: BellDiagonalState) -> "EPRPair":
        """Return the pair after one successful purification round."""
        return replace(self, state=state, purification_rounds=self.purification_rounds + 1)

    def at_locations(self, left: Optional[str], right: Optional[str]) -> "EPRPair":
        """Return a copy with updated endpoint locations."""
        return replace(self, left_location=left, right_location=right)

    def meets_threshold(self, params: IonTrapParameters | None = None) -> bool:
        """True if the pair's fidelity satisfies the fault-tolerance threshold."""
        params = params or IonTrapParameters.default()
        return self.fidelity >= params.threshold_fidelity


def generate_pair(
    params: IonTrapParameters | None = None,
    *,
    generator: Optional[str] = None,
    zero_prep_fidelity: Optional[float] = None,
) -> EPRPair:
    """Generate a fresh :class:`EPRPair` at a G node."""
    params = params or IonTrapParameters.default()
    state = generation_state(params, zero_prep_fidelity)
    return EPRPair(state=state, generator=generator, left_location=generator, right_location=generator)
