"""Bell-diagonal and Werner state algebra.

Every two-qubit state the communication network manipulates (EPR pairs under
movement, teleportation and purification) stays within the *Bell-diagonal*
family: a probabilistic mixture of the four Bell states.  We track the four
coefficients directly, which makes the paper's closed-form fidelity models
(Eqs. 1, 3, 4) and the DEJMPS / BBPSSW recurrence maps exact and cheap.

Conventions
-----------
The coefficient vector is ordered ``(phi_plus, psi_plus, psi_minus, phi_minus)``
with ``phi_plus`` the reference (target) Bell state, so

* ``fidelity == phi_plus``
* an ``X`` error on one half maps ``phi_plus <-> psi_plus`` and
  ``phi_minus <-> psi_minus``
* a ``Z`` error maps ``phi_plus <-> phi_minus`` and ``psi_plus <-> psi_minus``
* a ``Y`` error maps ``phi_plus <-> psi_minus`` and ``psi_plus <-> phi_minus``
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Tuple

from ..errors import FidelityError
from .fidelity import validate_fidelity

_NORMALISATION_TOL = 1e-9


@dataclass(frozen=True)
class BellDiagonalState:
    """A two-qubit state diagonal in the Bell basis.

    Attributes are the weights of the four Bell states; they must be
    non-negative and sum to one (within numerical tolerance).
    """

    phi_plus: float
    psi_plus: float
    psi_minus: float
    phi_minus: float

    def __post_init__(self) -> None:
        coeffs = self.coefficients
        for name, value in zip(self._FIELDS, coeffs):
            # NaN compares False against every bound, so finiteness must be
            # checked explicitly rather than relying on the range tests.
            if not math.isfinite(value):
                raise FidelityError(f"Bell coefficient {name} must be finite, got {value}")
            if value < -_NORMALISATION_TOL:
                raise FidelityError(f"Bell coefficient {name} must be non-negative, got {value}")
        total = sum(coeffs)
        if abs(total - 1.0) > 1e-6:
            raise FidelityError(f"Bell coefficients must sum to 1, got {total}")

    _FIELDS = ("phi_plus", "psi_plus", "psi_minus", "phi_minus")

    # -- constructors --------------------------------------------------------

    @classmethod
    def perfect(cls) -> "BellDiagonalState":
        """The reference Bell state with fidelity 1."""
        return cls(1.0, 0.0, 0.0, 0.0)

    @classmethod
    def maximally_mixed(cls) -> "BellDiagonalState":
        """The two-qubit maximally mixed state (fidelity 1/4)."""
        return cls(0.25, 0.25, 0.25, 0.25)

    @classmethod
    def werner(cls, fidelity: float) -> "BellDiagonalState":
        """A Werner state of the given fidelity (errors spread evenly)."""
        f = validate_fidelity(fidelity)
        rest = (1.0 - f) / 3.0
        return cls(f, rest, rest, rest)

    @classmethod
    def from_error(cls, error: float, split: Tuple[float, float, float] = (1 / 3, 1 / 3, 1 / 3)) -> "BellDiagonalState":
        """Build a state with total error ``error`` distributed per ``split``.

        ``split`` gives the relative weights of the ``psi_plus``, ``psi_minus``
        and ``phi_minus`` components and must sum to 1.
        """
        if error < 0.0 or error > 1.0:
            raise FidelityError(f"error must be in [0, 1], got {error}")
        s = sum(split)
        if s <= 0:
            raise FidelityError("split weights must sum to a positive value")
        frac = [w / s for w in split]
        return cls(1.0 - error, error * frac[0], error * frac[1], error * frac[2])

    @classmethod
    def from_coefficients(cls, coefficients: Iterable[float]) -> "BellDiagonalState":
        """Build a state from an iterable of four coefficients (re-normalised)."""
        values = [float(v) for v in coefficients]
        if len(values) != 4:
            raise FidelityError(f"expected 4 Bell coefficients, got {len(values)}")
        total = sum(values)
        if total <= 0:
            raise FidelityError("Bell coefficients must have a positive sum")
        values = [max(v, 0.0) / total for v in values]
        total = sum(values)
        values = [v / total for v in values]
        return cls(*values)

    # -- views ----------------------------------------------------------------

    @property
    def coefficients(self) -> Tuple[float, float, float, float]:
        """The four Bell coefficients as a tuple."""
        return (self.phi_plus, self.psi_plus, self.psi_minus, self.phi_minus)

    @property
    def fidelity(self) -> float:
        """Fidelity with respect to the reference Bell state."""
        return self.phi_plus

    @property
    def error(self) -> float:
        """Total error probability (1 - fidelity)."""
        return 1.0 - self.phi_plus

    # -- channels --------------------------------------------------------------

    def depolarize(self, probability: float) -> "BellDiagonalState":
        """Mix the pair with the maximally mixed state with weight ``probability``.

        This models a completely depolarising event affecting the pair (for
        example a noisy two-qubit gate acting on one of its halves together
        with another qubit).
        """
        p = _validate_prob(probability)
        mixed = 0.25 * p
        return BellDiagonalState(
            (1.0 - p) * self.phi_plus + mixed,
            (1.0 - p) * self.psi_plus + mixed,
            (1.0 - p) * self.psi_minus + mixed,
            (1.0 - p) * self.phi_minus + mixed,
        )

    def local_depolarize(self, probability: float) -> "BellDiagonalState":
        """Apply a single-qubit depolarising channel to one half of the pair.

        With probability ``probability`` the affected qubit suffers a uniformly
        random Pauli error (X, Y or Z each with probability p/3).
        """
        p = _validate_prob(probability)
        a, b, c, d = self.coefficients
        px = p / 3.0
        stay = 1.0 - p
        return BellDiagonalState(
            stay * a + px * (b + c + d),
            stay * b + px * (a + d + c),
            stay * c + px * (d + a + b),
            stay * d + px * (c + b + a),
        )

    def dephase(self, probability: float) -> "BellDiagonalState":
        """Apply a single-qubit phase-flip (Z) channel to one half."""
        p = _validate_prob(probability)
        a, b, c, d = self.coefficients
        return BellDiagonalState(
            (1.0 - p) * a + p * d,
            (1.0 - p) * b + p * c,
            (1.0 - p) * c + p * b,
            (1.0 - p) * d + p * a,
        )

    def bit_flip(self, probability: float) -> "BellDiagonalState":
        """Apply a single-qubit bit-flip (X) channel to one half."""
        p = _validate_prob(probability)
        a, b, c, d = self.coefficients
        return BellDiagonalState(
            (1.0 - p) * a + p * b,
            (1.0 - p) * b + p * a,
            (1.0 - p) * c + p * d,
            (1.0 - p) * d + p * c,
        )

    def movement_decay(self, per_cell_error: float, cells: float) -> "BellDiagonalState":
        """Fidelity loss from ballistic movement, per the paper's Eq. 1.

        Eq. 1 models each cell traversed as an independent chance of losing the
        qubit's state: ``F_new = F_old * (1 - p_mv)^D``.  The lost weight is
        spread evenly over the three error components (the worst-case,
        unbiased-noise assumption used throughout Section 4).
        """
        p = _validate_prob(per_cell_error)
        if cells < 0:
            raise FidelityError(f"cells must be non-negative, got {cells}")
        survive = (1.0 - p) ** cells
        a, b, c, d = self.coefficients
        lost = a * (1.0 - survive)
        return BellDiagonalState(a * survive, b + lost / 3.0, c + lost / 3.0, d + lost / 3.0)

    def twirl(self) -> "WernerState":
        """Symmetrise into a Werner state of the same fidelity (BBPSSW twirl)."""
        return WernerState(self.fidelity)

    def mix(self, other: "BellDiagonalState", weight: float) -> "BellDiagonalState":
        """Convex mixture ``(1 - weight) * self + weight * other``."""
        w = _validate_prob(weight)
        a = [(1.0 - w) * x + w * y for x, y in zip(self.coefficients, other.coefficients)]
        return BellDiagonalState(*a)

    def permute_errors(self, order: Tuple[int, int, int]) -> "BellDiagonalState":
        """Permute the three error components (local Pauli rotations).

        ``order`` gives, for each error slot ``(psi_plus, psi_minus, phi_minus)``,
        the index (0, 1 or 2) of the old error component to place there.  The
        fidelity component is unchanged.  DEJMPS uses such a rotation between
        rounds to keep its quadratic convergence.
        """
        errs = (self.psi_plus, self.psi_minus, self.phi_minus)
        if sorted(order) != [0, 1, 2]:
            raise FidelityError(f"order must be a permutation of (0, 1, 2), got {order}")
        new = (errs[order[0]], errs[order[1]], errs[order[2]])
        return BellDiagonalState(self.phi_plus, new[0], new[1], new[2])

    def sorted_errors(self) -> "BellDiagonalState":
        """Return the state with error components sorted in descending order.

        Placing the largest error component in the ``phi_minus`` slot maximises
        the fidelity gain of the next DEJMPS round (the protocol's local
        rotations are free to do so).
        """
        errs = sorted((self.psi_plus, self.psi_minus, self.phi_minus))
        return BellDiagonalState(self.phi_plus, errs[0], errs[1], errs[2])

    def __iter__(self):
        return iter(self.coefficients)


@dataclass(frozen=True)
class WernerState:
    """A Werner state, fully described by its fidelity."""

    fidelity_value: float

    def __post_init__(self) -> None:
        validate_fidelity(self.fidelity_value, name="Werner fidelity")

    @property
    def fidelity(self) -> float:
        return self.fidelity_value

    @property
    def error(self) -> float:
        return 1.0 - self.fidelity_value

    def to_bell_diagonal(self) -> BellDiagonalState:
        """Expand into the equivalent Bell-diagonal coefficient vector."""
        return BellDiagonalState.werner(self.fidelity_value)

    def depolarize(self, probability: float) -> "WernerState":
        """Mix with the maximally mixed state (stays Werner)."""
        p = _validate_prob(probability)
        return WernerState((1.0 - p) * self.fidelity_value + 0.25 * p)


def _validate_prob(probability: float) -> float:
    p = float(probability)
    if not (0.0 <= p <= 1.0):
        raise FidelityError(f"probability must be in [0, 1], got {p}")
    return p
