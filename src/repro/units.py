"""Unit helpers used throughout the library.

The paper expresses operation latencies in microseconds, distances either in
*cells* (one ion trap, the minimum ballistic move) or in *hops* (one
teleportation link between adjacent T' nodes, nominally 600 cells).  All
internal computations use microseconds and cells; these helpers exist so call
sites state their units explicitly instead of passing bare floats around.
"""

from __future__ import annotations

from .errors import ConfigurationError

#: Number of microseconds in a millisecond / second, for report formatting.
US_PER_MS = 1_000.0
US_PER_S = 1_000_000.0

#: Default number of ballistic cells spanned by one teleportation hop.  The
#: paper derives ~600 cells as the distance at which teleportation becomes
#: faster than ballistic movement (Section 4.6) and adopts it as the hop size.
DEFAULT_CELLS_PER_HOP = 600


def microseconds(value: float) -> float:
    """Return ``value`` interpreted as microseconds (identity, for clarity)."""
    return float(value)


def milliseconds(value: float) -> float:
    """Convert milliseconds to microseconds."""
    return float(value) * US_PER_MS


def seconds(value: float) -> float:
    """Convert seconds to microseconds."""
    return float(value) * US_PER_S


def us_to_ms(value_us: float) -> float:
    """Convert microseconds to milliseconds."""
    return float(value_us) / US_PER_MS


def us_to_s(value_us: float) -> float:
    """Convert microseconds to seconds."""
    return float(value_us) / US_PER_S


def hops_to_cells(hops: float, cells_per_hop: int = DEFAULT_CELLS_PER_HOP) -> float:
    """Convert a distance in teleportation hops to ballistic cells."""
    if cells_per_hop <= 0:
        raise ConfigurationError(f"cells_per_hop must be positive, got {cells_per_hop}")
    return float(hops) * float(cells_per_hop)


def cells_to_hops(cells: float, cells_per_hop: int = DEFAULT_CELLS_PER_HOP) -> float:
    """Convert a distance in ballistic cells to teleportation hops."""
    if cells_per_hop <= 0:
        raise ConfigurationError(f"cells_per_hop must be positive, got {cells_per_hop}")
    return float(cells) / float(cells_per_hop)


def format_duration(value_us: float) -> str:
    """Render a duration with a human-friendly unit.

    >>> format_duration(0.5)
    '0.500 us'
    >>> format_duration(2500)
    '2.500 ms'
    >>> format_duration(3.2e6)
    '3.200 s'
    """
    if value_us < 0:
        raise ConfigurationError(f"duration must be non-negative, got {value_us}")
    if value_us >= US_PER_S:
        return f"{value_us / US_PER_S:.3f} s"
    if value_us >= US_PER_MS:
        return f"{value_us / US_PER_MS:.3f} ms"
    return f"{value_us:.3f} us"
