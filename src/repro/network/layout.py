"""Machine layouts: Home Base and Mobile Qubit (paper Section 5, Figure 15).

A layout maps logical qubits onto LQ sites of the mesh and translates each
two-logical-qubit operation into the channel-level communications it requires:

* **Home Base** — every logical qubit has a fixed home site able to error
  correct it, plus room for one visitor.  For an operation (i, j) the second
  operand teleports to the first operand's home and teleports back afterwards,
  so every operation costs two long-distance communications.
* **Mobile Qubit** — every LQ site can error correct two logical qubits, so
  qubits migrate.  In the QFT pattern a qubit walks along the line of its
  partners (nearest-neighbour hops) and only teleports a long distance when it
  returns to its starting location after its final interaction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import ConfigurationError
from .geometry import Coordinate
from .topology import MeshTopology


@dataclass(frozen=True)
class CommRequest:
    """One long-distance communication: move ``qubit`` from ``source`` to ``dest``."""

    source: Coordinate
    dest: Coordinate
    qubit: int
    purpose: str = "operation"

    @property
    def is_local(self) -> bool:
        """True when source and destination coincide (no channel needed)."""
        return self.source == self.dest

    def hops(self) -> int:
        return self.source.manhattan(self.dest)


class MachineLayout(ABC):
    """Maps logical qubits to LQ sites and operations to communications."""

    name: str = "abstract"

    def __init__(self, topology: MeshTopology, num_qubits: int) -> None:
        if num_qubits < 1:
            raise ConfigurationError(f"num_qubits must be >= 1, got {num_qubits}")
        if num_qubits > topology.qubit_capacity:
            raise ConfigurationError(
                f"{num_qubits} logical qubits do not fit on a "
                f"{topology.width}x{topology.height} {topology.fabric} "
                f"({topology.qubit_capacity} LQ sites)"
            )
        self.topology = topology
        self.num_qubits = num_qubits
        self._positions: Dict[int, Coordinate] = {
            q: self.home_site(q) for q in range(1, num_qubits + 1)
        }

    # -- site mapping -------------------------------------------------------------

    def home_site(self, qubit: int) -> Coordinate:
        """The LQ site logical qubit ``qubit`` (1-based) starts at."""
        self._validate_qubit(qubit)
        index = qubit - 1
        return self._site_for_index(index)

    def _site_for_index(self, index: int) -> Coordinate:
        """Row-major placement by default; subclasses may override."""
        return Coordinate(index % self.topology.width, index // self.topology.width)

    def position_of(self, qubit: int) -> Coordinate:
        """Current LQ site of ``qubit``."""
        self._validate_qubit(qubit)
        return self._positions[qubit]

    def reset(self) -> None:
        """Return every logical qubit to its home site."""
        self._positions = {q: self.home_site(q) for q in range(1, self.num_qubits + 1)}

    def _validate_qubit(self, qubit: int) -> None:
        if not (1 <= qubit <= self.num_qubits):
            raise ConfigurationError(
                f"qubit index {qubit} out of range 1..{self.num_qubits}"
            )

    # -- operation translation -------------------------------------------------------

    @abstractmethod
    def communications_for(self, qubit_a: int, qubit_b: int) -> List[CommRequest]:
        """Long-distance communications needed to perform an operation on (a, b)."""

    def average_hops(self, operations: List[Tuple[int, int]]) -> float:
        """Average channel length over a list of operations (resets positions)."""
        self.reset()
        total = 0
        count = 0
        for a, b in operations:
            for request in self.communications_for(a, b):
                if not request.is_local:
                    total += request.hops()
                    count += 1
        self.reset()
        return total / count if count else 0.0


class HomeBaseLayout(MachineLayout):
    """Each logical qubit owns a home site; visitors teleport there and back."""

    name = "home_base"

    def communications_for(self, qubit_a: int, qubit_b: int) -> List[CommRequest]:
        self._validate_qubit(qubit_a)
        self._validate_qubit(qubit_b)
        if qubit_a == qubit_b:
            raise ConfigurationError("an operation needs two distinct logical qubits")
        host, visitor = qubit_a, qubit_b
        host_site = self.home_site(host)
        visitor_site = self.home_site(visitor)
        requests = [
            CommRequest(visitor_site, host_site, visitor, purpose="visit"),
            CommRequest(host_site, visitor_site, visitor, purpose="return_home"),
        ]
        # Positions are unchanged after the round trip.
        return [r for r in requests if not r.is_local]


class MobileQubitLayout(MachineLayout):
    """Qubits migrate between sites; sites hold two logical qubits each.

    Sites are numbered along a boustrophedon (snake) path so that
    consecutively numbered logical qubits are physically adjacent, which is
    what makes the QFT's walk pattern mostly nearest-neighbour.
    """

    name = "mobile_qubit"

    def _site_for_index(self, index: int) -> Coordinate:
        width = self.topology.width
        row = index // width
        col = index % width
        if row % 2 == 1:
            col = width - 1 - col
        return Coordinate(col, row)

    def communications_for(self, qubit_a: int, qubit_b: int) -> List[CommRequest]:
        self._validate_qubit(qubit_a)
        self._validate_qubit(qubit_b)
        if qubit_a == qubit_b:
            raise ConfigurationError("an operation needs two distinct logical qubits")
        mover, target = (qubit_a, qubit_b) if qubit_a < qubit_b else (qubit_b, qubit_a)
        mover_site = self._positions[mover]
        target_site = self._positions[target]
        requests: List[CommRequest] = []
        if mover_site != target_site:
            requests.append(CommRequest(mover_site, target_site, mover, purpose="walk"))
            self._positions[mover] = target_site
        if target == self.num_qubits:
            # Final interaction of the mover: teleport back to its home site.
            home = self.home_site(mover)
            if self._positions[mover] != home:
                requests.append(
                    CommRequest(self._positions[mover], home, mover, purpose="return_home")
                )
                self._positions[mover] = home
        return requests


def build_layout(
    name: str, topology: MeshTopology, num_qubits: int
) -> MachineLayout:
    """Construct a layout by name ("home_base" or "mobile_qubit")."""
    key = name.strip().lower()
    table = {
        "home_base": HomeBaseLayout,
        "homebase": HomeBaseLayout,
        "mobile_qubit": MobileQubitLayout,
        "mobile": MobileQubitLayout,
    }
    if key not in table:
        raise ConfigurationError(
            f"unknown layout {name!r}; expected one of {sorted(set(table))}"
        )
    return table[key](topology, num_qubits)
