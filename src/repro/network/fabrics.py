"""Named fabric builders: line, ring, mesh and torus topologies.

The scenario engine describes machines declaratively, so topologies are
constructed through a registry of named builders rather than by calling
:class:`~repro.network.topology.MeshTopology` directly.  Every builder takes
the same keyword surface — ``width``, ``height``, ``allocation``,
``cells_per_hop`` — and returns a configured topology; 1-D fabrics (line,
ring) reject an explicit height other than 1.

New fabrics register themselves with :func:`register_topology`::

    @register_topology("my_fabric")
    def _build_my_fabric(width, height, *, allocation=None, cells_per_hop=600):
        ...
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import ConfigurationError
from .bigfabric import DragonflyTopology, FatTreeTopology, LeafSpineTopology
from .nodes import ResourceAllocation
from .topology import MeshTopology

#: A builder maps (width, height, allocation, cells_per_hop) to a topology.
TopologyBuilder = Callable[..., MeshTopology]

_BUILDERS: Dict[str, TopologyBuilder] = {}


def register_topology(name: str) -> Callable[[TopologyBuilder], TopologyBuilder]:
    """Class/function decorator adding a builder to the fabric registry."""
    key = name.strip().lower()
    if not key:
        raise ConfigurationError("a topology builder needs a non-empty name")

    def _register(builder: TopologyBuilder) -> TopologyBuilder:
        if key in _BUILDERS:
            raise ConfigurationError(f"topology builder {key!r} is already registered")
        _BUILDERS[key] = builder
        return builder

    return _register


def list_topologies() -> List[str]:
    """Registered fabric names, sorted."""
    return sorted(_BUILDERS)


def build_topology(
    kind: str,
    width: int,
    height: Optional[int] = None,
    *,
    allocation: Optional[ResourceAllocation] = None,
    cells_per_hop: int = 600,
    **options: int,
) -> MeshTopology:
    """Build a fabric by registry name.

    ``height`` defaults to ``width`` for 2-D fabrics and to 1 for 1-D ones.
    Extra keyword ``options`` (e.g. ``hosts_per_leaf`` for ``leaf_spine``)
    pass through to the builder; a builder that does not accept an option
    rejects it with :class:`ConfigurationError`.
    """
    key = (kind or "").strip().lower()
    if key not in _BUILDERS:
        raise ConfigurationError(
            f"unknown topology kind {kind!r}; known: {list_topologies()}"
        )
    try:
        return _BUILDERS[key](
            width, height, allocation=allocation, cells_per_hop=cells_per_hop, **options
        )
    except TypeError as exc:
        raise ConfigurationError(
            f"topology {key!r} rejected its options {sorted(options)}: {exc}"
        ) from exc


def _require_flat(kind: str, width: int, height: Optional[int]) -> None:
    if height not in (None, 1):
        raise ConfigurationError(
            f"a {kind} is one-dimensional; height must be 1 or omitted, got {height}"
        )
    if width < 2:
        raise ConfigurationError(f"a {kind} needs at least 2 nodes, got {width}")


@register_topology("line")
def _build_line(
    width: int,
    height: Optional[int] = None,
    *,
    allocation: Optional[ResourceAllocation] = None,
    cells_per_hop: int = 600,
) -> MeshTopology:
    """A 1-D chain of T' nodes (the Figure 9 chained-teleport geometry)."""
    _require_flat("line", width, height)
    return MeshTopology(width, 1, allocation, cells_per_hop=cells_per_hop)


@register_topology("ring")
def _build_ring(
    width: int,
    height: Optional[int] = None,
    *,
    allocation: Optional[ResourceAllocation] = None,
    cells_per_hop: int = 600,
) -> MeshTopology:
    """A 1-D chain closed into a cycle; routes take the shorter way around."""
    _require_flat("ring", width, height)
    if width < 3:
        raise ConfigurationError(f"a ring needs at least 3 nodes, got {width}")
    return MeshTopology(width, 1, allocation, cells_per_hop=cells_per_hop, wrap_x=True)


@register_topology("mesh")
def _build_mesh(
    width: int,
    height: Optional[int] = None,
    *,
    allocation: Optional[ResourceAllocation] = None,
    cells_per_hop: int = 600,
) -> MeshTopology:
    """The paper's 2-D mesh (square when height is omitted)."""
    return MeshTopology(width, height or width, allocation, cells_per_hop=cells_per_hop)


@register_topology("torus")
def _build_torus(
    width: int,
    height: Optional[int] = None,
    *,
    allocation: Optional[ResourceAllocation] = None,
    cells_per_hop: int = 600,
) -> MeshTopology:
    """A 2-D mesh with both dimensions wrapped around."""
    height = height or width
    if width < 3 or height < 3:
        raise ConfigurationError(
            f"a torus needs both dimensions >= 3, got {width}x{height}"
        )
    return MeshTopology(
        width,
        height,
        allocation,
        cells_per_hop=cells_per_hop,
        wrap_x=True,
        wrap_y=True,
    )


@register_topology("fat_tree")
def _build_fat_tree(
    width: int,
    height: Optional[int] = None,
    *,
    allocation: Optional[ResourceAllocation] = None,
    cells_per_hop: int = 600,
) -> MeshTopology:
    """A k-ary fat-tree; ``width`` is the arity k (k^3/4 hosts)."""
    if height not in (None, 4):
        raise ConfigurationError(
            f"a fat-tree always has 4 tiers; height must be 4 or omitted, got {height}"
        )
    return FatTreeTopology(width, allocation, cells_per_hop=cells_per_hop)


@register_topology("leaf_spine")
def _build_leaf_spine(
    width: int,
    height: Optional[int] = None,
    *,
    allocation: Optional[ResourceAllocation] = None,
    cells_per_hop: int = 600,
    hosts_per_leaf: Optional[int] = None,
) -> MeshTopology:
    """A two-tier Clos; ``width`` = leaves, ``height`` = spines.

    ``hosts_per_leaf`` defaults to the spine count, i.e. an oversubscription
    ratio of 1.0; raise it for oversubscribed fabrics.
    """
    spines = height if height is not None else max(width // 2, 1)
    hosts = hosts_per_leaf if hosts_per_leaf is not None else spines
    return LeafSpineTopology(width, spines, hosts, allocation, cells_per_hop=cells_per_hop)


@register_topology("dragonfly")
def _build_dragonfly(
    width: int,
    height: Optional[int] = None,
    *,
    allocation: Optional[ResourceAllocation] = None,
    cells_per_hop: int = 600,
    hosts_per_router: int = 1,
) -> MeshTopology:
    """A dragonfly; ``width`` = groups, ``height`` = routers per group."""
    routers = height if height is not None else max(width // 2, 1)
    return DragonflyTopology(
        width, routers, hosts_per_router, allocation, cells_per_hop=cells_per_hop
    )
