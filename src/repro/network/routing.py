"""Dimension-order routing on the mesh (paper Sections 3.2 and 5).

The paper's scheduler uses dimension-order (XY) routing: a path first travels
along the X dimension to the destination column, then along Y to the
destination row.  The router design (Figure 6) mirrors this with separate X
and Y teleporter sets and a single turn per path.

:class:`Path` captures an ordered list of T' nodes plus derived properties the
budget and simulation layers need (hop count, traversed links, the turning
node, per-dimension segments).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from enum import Enum
from typing import Callable, ClassVar, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigurationError, RoutingError
from .geometry import Coordinate
from .topology import LinkId, MeshTopology


class DimensionOrder(Enum):
    """Which dimension is routed first."""

    XY = "xy"
    YX = "yx"


@dataclass(frozen=True)
class Path:
    """An ordered sequence of T' nodes from source to destination.

    ``wraps`` declares the wrap-around extents of the fabric the path was
    routed on — ``(width, 0)`` for a ring, ``(width, height)`` for a torus,
    ``(0, 0)`` (the default) for non-wrapping meshes.  A step is only valid
    when geometrically adjacent or when it crosses the declared dimension's
    exact boundary link (node 0 to node extent-1); anything else — including
    interior jumps on a wrapping fabric — is rejected.

    ``express`` paths travel a hierarchical fabric (fat-tree, leaf-spine,
    dragonfly), whose steps are adjacent by construction of the fabric graph
    rather than by grid geometry; geometric step validation is skipped and
    the traversed :class:`LinkId`\\ s are built as express links.  The fabric
    enumerating the path guarantees every step is one of its registered
    links (a property test pins this).
    """

    nodes: Tuple[Coordinate, ...]
    wraps: Tuple[int, int] = (0, 0)
    express: bool = False

    def __post_init__(self) -> None:
        if len(self.nodes) < 1:
            raise RoutingError("a path needs at least one node")
        for a, b in zip(self.nodes, self.nodes[1:]):
            if a == b:
                raise RoutingError(f"path repeats node {a} on consecutive steps")
            if self.express:
                continue
            if a.manhattan(b) != 1 and not self._is_wrap_link(a, b):
                raise RoutingError(f"path nodes {a} and {b} are not adjacent")

    def _is_wrap_link(self, a: Coordinate, b: Coordinate) -> bool:
        if a.y == b.y:
            extent, low, high = self.wraps[0], min(a.x, b.x), max(a.x, b.x)
        elif a.x == b.x:
            extent, low, high = self.wraps[1], min(a.y, b.y), max(a.y, b.y)
        else:
            return False
        return extent >= 3 and low == 0 and high == extent - 1

    @property
    def source(self) -> Coordinate:
        return self.nodes[0]

    @property
    def destination(self) -> Coordinate:
        return self.nodes[-1]

    @property
    def hops(self) -> int:
        """Number of links traversed."""
        return len(self.nodes) - 1

    @property
    def links(self) -> Tuple[LinkId, ...]:
        """The virtual-wire links traversed, in order."""
        return tuple(
            LinkId(a, b, express=self.express)
            for a, b in zip(self.nodes, self.nodes[1:])
        )

    @property
    def intermediate_nodes(self) -> Tuple[Coordinate, ...]:
        """Nodes strictly between source and destination."""
        return self.nodes[1:-1]

    @property
    def turn_node(self) -> Optional[Coordinate]:
        """The node where the path changes dimension, if any."""
        for prev_node, node, next_node in zip(self.nodes, self.nodes[1:], self.nodes[2:]):
            moved_x_then_y = prev_node.y == node.y and node.x == next_node.x
            moved_y_then_x = prev_node.x == node.x and node.y == next_node.y
            if moved_x_then_y or moved_y_then_x:
                return node
        return None

    def midpoint_node(self) -> Coordinate:
        """Node nearest the middle of the path (where the seed G node sits)."""
        return self.nodes[len(self.nodes) // 2]

    def contains_node(self, coord: Coordinate) -> bool:
        return coord in self.nodes

    def contains_link(self, link: LinkId) -> bool:
        return link in self.links

    @property
    def stable_name(self) -> str:
        """Canonical serialization-stable string form: ``(x,y)->(x,y)->…``.

        The ``route`` trace record carries the chosen path in this form (the
        payload codec round-trips one level of tuples only, so a flat string
        is the schema-safe encoding), making the format a golden-fixture
        contract like :attr:`LinkId.stable_name`.
        """
        return "->".join(f"({n.x},{n.y})" for n in self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)


def _axis_step(current: int, target: int, extent: int, wrap: bool) -> int:
    """Direction (+1/-1) to move ``current`` toward ``target`` on one axis.

    On a wrapping axis the shorter way around wins; ties go forward so the
    route is deterministic.
    """
    if not wrap:
        return 1 if target > current else -1
    forward = (target - current) % extent
    backward = (current - target) % extent
    return 1 if forward <= backward else -1


def dimension_order_route(
    source: Coordinate,
    destination: Coordinate,
    topology: Optional[MeshTopology] = None,
    *,
    order: DimensionOrder = DimensionOrder.XY,
) -> Path:
    """Compute the dimension-order path between two T' nodes.

    When a topology is given, both endpoints are validated against it and its
    wrap flags are honoured: on a ring or torus the walk takes the shorter
    way around, stepping across the wrap link where that is cheaper.
    """
    wrap_x = wrap_y = False
    width = height = 0
    if topology is not None:
        topology.validate_node(source)
        topology.validate_node(destination)
        wrap_x, wrap_y = topology.wrap_x, topology.wrap_y
        width, height = topology.width, topology.height
    nodes: List[Coordinate] = [source]
    current = source

    def _walk_x(target_x: int) -> None:
        nonlocal current
        if current.x == target_x:
            return
        step = _axis_step(current.x, target_x, width, wrap_x)
        while current.x != target_x:
            new_x = current.x + step
            if wrap_x:
                new_x %= width
            current = Coordinate(new_x, current.y)
            nodes.append(current)

    def _walk_y(target_y: int) -> None:
        nonlocal current
        if current.y == target_y:
            return
        step = _axis_step(current.y, target_y, height, wrap_y)
        while current.y != target_y:
            new_y = current.y + step
            if wrap_y:
                new_y %= height
            current = Coordinate(current.x, new_y)
            nodes.append(current)

    if order is DimensionOrder.XY:
        _walk_x(destination.x)
        _walk_y(destination.y)
    else:
        _walk_y(destination.y)
        _walk_x(destination.x)
    return Path(tuple(nodes), wraps=(width if wrap_x else 0, height if wrap_y else 0))


def candidate_paths(
    source: Coordinate,
    destination: Coordinate,
    topology: Optional[MeshTopology] = None,
    *,
    order: DimensionOrder = DimensionOrder.XY,
) -> Tuple[Path, ...]:
    """All candidate paths between two T' nodes, deterministic-first.

    Hierarchical fabrics (fat-tree, leaf-spine, dragonfly) expose an
    ``enumerate_paths`` hook returning every equal-cost and non-minimal
    candidate; everything else offers exactly one candidate — the
    dimension-order route — so the default (no load balancer) behaviour of
    taking ``candidates[0]`` is byte-identical to the historical routing on
    every mesh fabric.  The first candidate of a hierarchical enumeration is
    minimal, so ``candidates[0]`` is a sound policy-free default there too.
    """
    enumerate_hook = getattr(topology, "enumerate_paths", None)
    if enumerate_hook is not None:
        paths: Tuple[Path, ...] = enumerate_hook(source, destination)
        if not paths:
            raise RoutingError(f"no candidate paths between {source} and {destination}")
        return paths
    return (dimension_order_route(source, destination, topology, order=order),)


def route_many(
    pairs: Sequence[Tuple[Coordinate, Coordinate]],
    topology: Optional[MeshTopology] = None,
    *,
    order: DimensionOrder = DimensionOrder.XY,
) -> List[Path]:
    """Route a batch of (source, destination) pairs."""
    return [dimension_order_route(s, d, topology, order=order) for s, d in pairs]


def link_load(paths: Sequence[Path]) -> dict:
    """Count how many paths traverse each link (contention estimate)."""
    load: dict = {}
    for path in paths:
        for link in path.links:
            load[link] = load.get(link, 0) + 1
    return load


def node_load(paths: Sequence[Path]) -> dict:
    """Count how many paths traverse each T' node (router sharing estimate)."""
    load: dict = {}
    for path in paths:
        for node in path.nodes:
            load[node] = load.get(node, 0) + 1
    return load


# -- load-balanced path selection ------------------------------------------------------
#
# On multi-path fabrics *which* candidate a channel takes decides contention
# as much as the max-min rate allocation does.  A LoadBalancer picks one
# candidate per channel open; the transport backend maintains the load view
# (active channels per link) and threads the choice through both simulation
# granularities, so a policy's decisions — and therefore its trace — are
# identical on the fluid and the detailed backend by construction.


def ecmp_hash(flow_id: int, source: Coordinate, destination: Coordinate) -> int:
    """Deterministic SHA-256 hash of (flow id, src, dst).

    Process- and platform-independent (no ``hash()`` randomisation), so an
    ECMP decision replayed in a subprocess, on another machine or by the
    other transport backend lands on the same candidate — a property test
    pins the cross-process round trip.
    """
    token = f"{flow_id}:{source.x},{source.y}:{destination.x},{destination.y}"
    digest = hashlib.sha256(token.encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big")


def _max_link_load(path: Path, link_loads: Mapping[LinkId, int]) -> int:
    """The path's bottleneck occupancy: max active channels on any link."""
    worst = 0
    for link in path.links:
        load = link_loads.get(link, 0)
        if load > worst:
            worst = load
    return worst


class LoadBalancer:
    """Chooses one candidate path per channel open.

    ``choose`` receives the flow id being opened, the endpoints, the fabric's
    candidate enumeration (minimal candidates first) and the transport's load
    view — active channels per link — and returns the index of the candidate
    to take.  Implementations must be deterministic in their inputs: both
    transport backends and every allocator replay the same choices, which is
    what keeps routing-policy runs diffable.
    """

    #: Registry name; subclasses override.
    policy: ClassVar[str] = "abstract"

    def choose(
        self,
        flow_id: int,
        source: Coordinate,
        destination: Coordinate,
        candidates: Sequence[Path],
        link_loads: Mapping[LinkId, int],
    ) -> int:
        raise NotImplementedError


def _minimal_indices(candidates: Sequence[Path]) -> List[int]:
    shortest = min(path.hops for path in candidates)
    return [i for i, path in enumerate(candidates) if path.hops == shortest]


class EcmpBalancer(LoadBalancer):
    """Equal-cost multi-path: hash the flow onto one *minimal* candidate.

    Oblivious to load; spreads flows uniformly over the equal-cost class
    (uniform within ±20% over 1k flows — property-tested) and never takes a
    non-minimal detour.
    """

    policy = "ecmp"

    def choose(
        self,
        flow_id: int,
        source: Coordinate,
        destination: Coordinate,
        candidates: Sequence[Path],
        link_loads: Mapping[LinkId, int],
    ) -> int:
        minimal = _minimal_indices(candidates)
        return minimal[ecmp_hash(flow_id, source, destination) % len(minimal)]


class LeastLoadedBalancer(LoadBalancer):
    """Pick the candidate minimising current max link occupancy.

    Ties break toward fewer hops, then the lower candidate index, so the
    chosen path is never strictly dominated by another candidate (one with
    both lower bottleneck load and fewer hops) — property-tested.
    """

    policy = "least_loaded"

    def choose(
        self,
        flow_id: int,
        source: Coordinate,
        destination: Coordinate,
        candidates: Sequence[Path],
        link_loads: Mapping[LinkId, int],
    ) -> int:
        best_index = 0
        best_key: Tuple[int, int] | None = None
        for index, path in enumerate(candidates):
            key = (_max_link_load(path, link_loads), path.hops)
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        return best_index


class AdaptiveBalancer(LoadBalancer):
    """ECMP with a load escape hatch, re-evaluated at every channel open.

    The hash choice is kept unless its bottleneck link currently carries more
    than ``hysteresis`` channels beyond the least-loaded candidate's
    bottleneck; only then does the flow divert (possibly onto a non-minimal
    Valiant path on a dragonfly).  The hysteresis band keeps the policy from
    flapping between near-equal candidates while still shedding genuine
    hotspots.
    """

    policy = "adaptive"

    def __init__(self, hysteresis: float = 1.0) -> None:
        if not hysteresis >= 0.0:
            raise ConfigurationError(f"hysteresis must be >= 0, got {hysteresis}")
        self.hysteresis = hysteresis

    def choose(
        self,
        flow_id: int,
        source: Coordinate,
        destination: Coordinate,
        candidates: Sequence[Path],
        link_loads: Mapping[LinkId, int],
    ) -> int:
        hashed = EcmpBalancer().choose(flow_id, source, destination, candidates, link_loads)
        hashed_load = _max_link_load(candidates[hashed], link_loads)
        best = LeastLoadedBalancer().choose(
            flow_id, source, destination, candidates, link_loads
        )
        best_load = _max_link_load(candidates[best], link_loads)
        if hashed_load - best_load > self.hysteresis:
            return best
        return hashed


_BALANCERS: Dict[str, Callable[..., LoadBalancer]] = {}


def register_balancer(cls: "type[LoadBalancer]") -> "type[LoadBalancer]":
    """Class decorator adding a balancer to the policy registry."""
    name = getattr(cls, "policy", None)
    if not isinstance(name, str) or not name or name == LoadBalancer.policy:
        raise ConfigurationError(f"load balancer {cls!r} needs a distinct 'policy'")
    if name in _BALANCERS:
        raise ConfigurationError(f"load-balancing policy {name!r} is already registered")
    _BALANCERS[name] = cls
    return cls


for _cls in (EcmpBalancer, LeastLoadedBalancer, AdaptiveBalancer):
    register_balancer(_cls)


def list_balancers() -> List[str]:
    """Registered load-balancing policy names, sorted."""
    return sorted(_BALANCERS)


def create_balancer(policy: str, *, hysteresis: Optional[float] = None) -> LoadBalancer:
    """Instantiate the balancer registered under ``policy``.

    ``hysteresis`` reaches only policies that take it (``adaptive``); passing
    it to the others is accepted and ignored, so one spec surface can sweep
    the policy axis without reshaping its parameters.
    """
    key = (policy or "").strip().lower()
    factory = _BALANCERS.get(key)
    if factory is None:
        raise ConfigurationError(
            f"unknown load-balancing policy {policy!r}; known: {list_balancers()}"
        )
    if factory is AdaptiveBalancer and hysteresis is not None:
        return AdaptiveBalancer(hysteresis=hysteresis)
    return factory()
