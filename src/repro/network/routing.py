"""Dimension-order routing on the mesh (paper Sections 3.2 and 5).

The paper's scheduler uses dimension-order (XY) routing: a path first travels
along the X dimension to the destination column, then along Y to the
destination row.  The router design (Figure 6) mirrors this with separate X
and Y teleporter sets and a single turn per path.

:class:`Path` captures an ordered list of T' nodes plus derived properties the
budget and simulation layers need (hop count, traversed links, the turning
node, per-dimension segments).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence, Tuple

from ..errors import RoutingError
from .geometry import Coordinate
from .topology import LinkId, MeshTopology


class DimensionOrder(Enum):
    """Which dimension is routed first."""

    XY = "xy"
    YX = "yx"


@dataclass(frozen=True)
class Path:
    """An ordered sequence of T' nodes from source to destination.

    ``wraps`` declares the wrap-around extents of the fabric the path was
    routed on — ``(width, 0)`` for a ring, ``(width, height)`` for a torus,
    ``(0, 0)`` (the default) for non-wrapping meshes.  A step is only valid
    when geometrically adjacent or when it crosses the declared dimension's
    exact boundary link (node 0 to node extent-1); anything else — including
    interior jumps on a wrapping fabric — is rejected.
    """

    nodes: Tuple[Coordinate, ...]
    wraps: Tuple[int, int] = (0, 0)

    def __post_init__(self) -> None:
        if len(self.nodes) < 1:
            raise RoutingError("a path needs at least one node")
        for a, b in zip(self.nodes, self.nodes[1:]):
            if a.manhattan(b) != 1 and not self._is_wrap_link(a, b):
                raise RoutingError(f"path nodes {a} and {b} are not adjacent")

    def _is_wrap_link(self, a: Coordinate, b: Coordinate) -> bool:
        if a.y == b.y:
            extent, low, high = self.wraps[0], min(a.x, b.x), max(a.x, b.x)
        elif a.x == b.x:
            extent, low, high = self.wraps[1], min(a.y, b.y), max(a.y, b.y)
        else:
            return False
        return extent >= 3 and low == 0 and high == extent - 1

    @property
    def source(self) -> Coordinate:
        return self.nodes[0]

    @property
    def destination(self) -> Coordinate:
        return self.nodes[-1]

    @property
    def hops(self) -> int:
        """Number of links traversed."""
        return len(self.nodes) - 1

    @property
    def links(self) -> Tuple[LinkId, ...]:
        """The virtual-wire links traversed, in order."""
        return tuple(LinkId(a, b) for a, b in zip(self.nodes, self.nodes[1:]))

    @property
    def intermediate_nodes(self) -> Tuple[Coordinate, ...]:
        """Nodes strictly between source and destination."""
        return self.nodes[1:-1]

    @property
    def turn_node(self) -> Optional[Coordinate]:
        """The node where the path changes dimension, if any."""
        for prev_node, node, next_node in zip(self.nodes, self.nodes[1:], self.nodes[2:]):
            moved_x_then_y = prev_node.y == node.y and node.x == next_node.x
            moved_y_then_x = prev_node.x == node.x and node.y == next_node.y
            if moved_x_then_y or moved_y_then_x:
                return node
        return None

    def midpoint_node(self) -> Coordinate:
        """Node nearest the middle of the path (where the seed G node sits)."""
        return self.nodes[len(self.nodes) // 2]

    def contains_node(self, coord: Coordinate) -> bool:
        return coord in self.nodes

    def contains_link(self, link: LinkId) -> bool:
        return link in self.links

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)


def _axis_step(current: int, target: int, extent: int, wrap: bool) -> int:
    """Direction (+1/-1) to move ``current`` toward ``target`` on one axis.

    On a wrapping axis the shorter way around wins; ties go forward so the
    route is deterministic.
    """
    if not wrap:
        return 1 if target > current else -1
    forward = (target - current) % extent
    backward = (current - target) % extent
    return 1 if forward <= backward else -1


def dimension_order_route(
    source: Coordinate,
    destination: Coordinate,
    topology: Optional[MeshTopology] = None,
    *,
    order: DimensionOrder = DimensionOrder.XY,
) -> Path:
    """Compute the dimension-order path between two T' nodes.

    When a topology is given, both endpoints are validated against it and its
    wrap flags are honoured: on a ring or torus the walk takes the shorter
    way around, stepping across the wrap link where that is cheaper.
    """
    wrap_x = wrap_y = False
    width = height = 0
    if topology is not None:
        topology.validate_node(source)
        topology.validate_node(destination)
        wrap_x, wrap_y = topology.wrap_x, topology.wrap_y
        width, height = topology.width, topology.height
    nodes: List[Coordinate] = [source]
    current = source

    def _walk_x(target_x: int) -> None:
        nonlocal current
        if current.x == target_x:
            return
        step = _axis_step(current.x, target_x, width, wrap_x)
        while current.x != target_x:
            new_x = current.x + step
            if wrap_x:
                new_x %= width
            current = Coordinate(new_x, current.y)
            nodes.append(current)

    def _walk_y(target_y: int) -> None:
        nonlocal current
        if current.y == target_y:
            return
        step = _axis_step(current.y, target_y, height, wrap_y)
        while current.y != target_y:
            new_y = current.y + step
            if wrap_y:
                new_y %= height
            current = Coordinate(current.x, new_y)
            nodes.append(current)

    if order is DimensionOrder.XY:
        _walk_x(destination.x)
        _walk_y(destination.y)
    else:
        _walk_y(destination.y)
        _walk_x(destination.x)
    return Path(tuple(nodes), wraps=(width if wrap_x else 0, height if wrap_y else 0))


def route_many(
    pairs: Sequence[Tuple[Coordinate, Coordinate]],
    topology: Optional[MeshTopology] = None,
    *,
    order: DimensionOrder = DimensionOrder.XY,
) -> List[Path]:
    """Route a batch of (source, destination) pairs."""
    return [dimension_order_route(s, d, topology, order=order) for s, d in pairs]


def link_load(paths: Sequence[Path]) -> dict:
    """Count how many paths traverse each link (contention estimate)."""
    load: dict = {}
    for path in paths:
        for link in path.links:
            load[link] = load.get(link, 0) + 1
    return load


def node_load(paths: Sequence[Path]) -> dict:
    """Count how many paths traverse each T' node (router sharing estimate)."""
    load: dict = {}
    for path in paths:
        for node in path.nodes:
            load[node] = load.get(node, 0) + 1
    return load
