"""Mesh grid topology (paper Section 3.2 and Figure 13).

A ``width x height`` mesh of T' nodes, with a G node on every link between
adjacent T' nodes (the virtual wires) and a purifier/corrector/logical-qubit
cluster attached to every T' node.  The topology is backed by a
:class:`networkx.Graph` so standard graph algorithms (connectivity checks,
shortest paths for validation, bisection estimates) are available, while the
routing used by the paper — dimension order — lives in
:mod:`repro.network.routing`.

Beyond the paper's plain mesh, either dimension can *wrap around*
(``wrap_x`` / ``wrap_y``), which yields the other standard fabrics the
scenario engine sweeps over: a ring (1-D with wrap), a torus (2-D with both
wraps) and a line (1-D without).  A wrap link joins the first and last node
of a row or column; distances and dimension-order routes take the shorter
way around.  The named fabric constructors live in
:mod:`repro.network.fabrics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator

import networkx as nx

from ..errors import ConfigurationError, RoutingError
from .geometry import Coordinate, iter_grid, manhattan_distance
from .nodes import ResourceAllocation


def is_wrap_step(a: Coordinate, b: Coordinate) -> bool:
    """True when ``a`` and ``b`` can only be joined by a wrap-around link.

    A wrap link is colinear, spans more than one cell and touches the zero
    edge of its dimension (it joins node 0 to the last node of a row or
    column); which widths actually provide it is the topology's concern.
    """
    dx, dy = abs(a.x - b.x), abs(a.y - b.y)
    if dy == 0 and dx > 1:
        return min(a.x, b.x) == 0
    if dx == 0 and dy > 1:
        return min(a.y, b.y) == 0
    return False


@dataclass(frozen=True)
class LinkId:
    """Identifier of the virtual wire between two adjacent T' nodes.

    Adjacency is either geometric (Manhattan distance 1) or via a wrap-around
    link of a ring/torus fabric (colinear, joining coordinate 0 to the far
    edge).  Anything else — diagonals, interior long jumps — is rejected,
    unless the link is declared *express*: the hierarchical fabrics
    (fat-tree, leaf-spine, dragonfly) wire hosts to switches and switches to
    switches across tiers, so their links are adjacent by construction of the
    fabric graph rather than by grid geometry.  ``express`` is excluded from
    equality/hashing: an express link and a grid link joining the same
    endpoints are the same physical wire.
    """

    a: Coordinate
    b: Coordinate
    express: bool = field(default=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ConfigurationError(f"a link needs two distinct endpoints, got {self.a} twice")
        if (
            not self.express
            and manhattan_distance(self.a, self.b) != 1
            and not is_wrap_step(self.a, self.b)
        ):
            raise ConfigurationError(
                f"a link must join adjacent T' nodes, got {self.a} and {self.b}"
            )
        # Canonical orientation so LinkId(a, b) == LinkId(b, a).
        if (self.b.x, self.b.y) < (self.a.x, self.a.y):
            first, second = self.b, self.a
            object.__setattr__(self, "a", first)
            object.__setattr__(self, "b", second)

    @classmethod
    def between(cls, a: Coordinate, b: Coordinate) -> "LinkId":
        return cls(a, b)

    @property
    def horizontal(self) -> bool:
        return self.a.y == self.b.y

    @property
    def is_wrap(self) -> bool:
        """True for the long-way-around link of a ring or torus."""
        return not self.express and manhattan_distance(self.a, self.b) != 1

    @property
    def stable_name(self) -> str:
        """Canonical serialization-stable string form: ``(ax,ay)-(bx,by)``.

        Golden traces and JSON result records key per-link quantities by this
        string, so its format is a compatibility contract (pinned by tests)
        rather than a cosmetic repr; the canonical endpoint orientation makes
        it independent of construction order.
        """
        return f"({self.a.x},{self.a.y})-({self.b.x},{self.b.y})"

    def __str__(self) -> str:
        return self.stable_name


class MeshTopology:
    """A mesh of T' nodes with G nodes on links and P/C/LQ sites at nodes."""

    def __init__(
        self,
        width: int,
        height: int,
        allocation: ResourceAllocation | None = None,
        *,
        cells_per_hop: int = 600,
        wrap_x: bool = False,
        wrap_y: bool = False,
    ) -> None:
        if width < 1 or height < 1:
            raise ConfigurationError(f"mesh dimensions must be >= 1, got {width}x{height}")
        if cells_per_hop < 1:
            raise ConfigurationError(f"cells_per_hop must be >= 1, got {cells_per_hop}")
        self.width = width
        self.height = height
        self.allocation = allocation or ResourceAllocation()
        self.cells_per_hop = cells_per_hop
        # A wrap needs at least 3 nodes to add a distinct link; on 1 or 2
        # nodes the "long way around" already is the direct link.
        self.wrap_x = wrap_x and width >= 3
        self.wrap_y = wrap_y and height >= 3
        self._graph = nx.Graph()
        self._links: Dict[LinkId, None] = {}
        self._build()

    def _build(self) -> None:
        for coord in iter_grid(self.width, self.height):
            self._graph.add_node(coord)
        for coord in iter_grid(self.width, self.height):
            for neighbour in coord.neighbours(self.width, self.height):
                if coord < neighbour:
                    self._add_link(coord, neighbour)
        if self.wrap_x:
            for y in range(self.height):
                self._add_link(Coordinate(0, y), Coordinate(self.width - 1, y))
        if self.wrap_y:
            for x in range(self.width):
                self._add_link(Coordinate(x, 0), Coordinate(x, self.height - 1))

    def _add_link(self, a: Coordinate, b: Coordinate, *, express: bool = False) -> None:
        link = LinkId(a, b, express=express)
        if link in self._links:
            # A silent re-add would double-register one physical wire — the
            # degenerate-ring hazard: on a 1-wide or 2-node wrapped dimension
            # the "long way around" *is* the direct link, so the wrap guards
            # above must keep such requests from ever reaching this point.
            raise ConfigurationError(
                f"link {link.stable_name} is already registered; "
                "one physical wire must not be added twice"
            )
        self._graph.add_edge(a, b, link=link)
        self._links[link] = None

    # -- structure ------------------------------------------------------------

    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph (nodes are :class:`Coordinate`)."""
        return self._graph

    @property
    def node_count(self) -> int:
        return self.width * self.height

    @property
    def qubit_capacity(self) -> int:
        """How many LQ sites can host logical qubits.

        Every T' node of a mesh carries an LQ cluster; hierarchical fabrics
        override this to their host count, since switch tiers hold no qubits.
        """
        return self.node_count

    @property
    def link_count(self) -> int:
        return len(self._links)

    def nodes(self) -> Iterator[Coordinate]:
        """All T' node coordinates in row-major order."""
        return iter_grid(self.width, self.height)

    def links(self) -> Iterable[LinkId]:
        """All virtual-wire links."""
        return self._links.keys()

    def contains(self, coord: Coordinate) -> bool:
        return 0 <= coord.x < self.width and 0 <= coord.y < self.height

    def validate_node(self, coord: Coordinate) -> Coordinate:
        if not self.contains(coord):
            raise RoutingError(f"{coord} is outside the {self.width}x{self.height} mesh")
        return coord

    def are_adjacent(self, a: Coordinate, b: Coordinate) -> bool:
        return self._graph.has_edge(a, b)

    def link_between(self, a: Coordinate, b: Coordinate) -> LinkId:
        if not self.are_adjacent(a, b):
            raise RoutingError(f"no link between {a} and {b}")
        return self._graph.edges[a, b]["link"]

    # -- distances ----------------------------------------------------------------

    def hop_distance(self, a: Coordinate, b: Coordinate) -> int:
        """Hop distance between two T' nodes (shorter way around on wraps)."""
        self.validate_node(a)
        self.validate_node(b)
        dx = abs(a.x - b.x)
        dy = abs(a.y - b.y)
        if self.wrap_x:
            dx = min(dx, self.width - dx)
        if self.wrap_y:
            dy = min(dy, self.height - dy)
        return dx + dy

    def cell_distance(self, a: Coordinate, b: Coordinate) -> int:
        """Physical distance in ballistic cells between two T' nodes."""
        return self.hop_distance(a, b) * self.cells_per_hop

    def diameter_hops(self) -> int:
        """Longest hop distance on the fabric (corner to corner on a mesh)."""
        dx = self.width // 2 if self.wrap_x else self.width - 1
        dy = self.height // 2 if self.wrap_y else self.height - 1
        return dx + dy

    # -- resource accounting ------------------------------------------------------

    def total_teleporters(self) -> int:
        return self.node_count * self.allocation.teleporters_per_node

    def total_generators(self) -> int:
        return self.link_count * self.allocation.generators_per_node

    def total_purifiers(self) -> int:
        return self.node_count * self.allocation.purifiers_per_node

    def interconnect_area_units(self) -> int:
        """Area proxy: one unit per teleporter, generator and purifier."""
        return (
            self.total_teleporters() + self.total_generators() + self.total_purifiers()
        )

    @property
    def fabric(self) -> str:
        """Fabric family implied by the dimensions and wrap flags."""
        flat = self.height == 1
        if self.wrap_x and self.wrap_y:
            return "torus"
        if flat and self.wrap_x:
            return "ring"
        if flat and not self.wrap_x:
            return "line"
        if self.wrap_x or self.wrap_y:
            return "cylinder"
        return "mesh"

    def describe(self) -> str:
        return (
            f"MeshTopology {self.width}x{self.height} ({self.fabric}): "
            f"{self.node_count} T' nodes, {self.link_count} virtual wires, "
            f"allocation {self.allocation.label}, "
            f"{self.cells_per_hop} cells/hop"
        )

    # -- validation helpers ----------------------------------------------------------

    def shortest_path_length(self, a: Coordinate, b: Coordinate) -> int:
        """Graph-theoretic shortest path length (equals :meth:`hop_distance`)."""
        self.validate_node(a)
        self.validate_node(b)
        return nx.shortest_path_length(self._graph, a, b)

    def is_connected(self) -> bool:
        return nx.is_connected(self._graph)


def square_mesh(side: int, allocation: ResourceAllocation | None = None, **kwargs) -> MeshTopology:
    """Convenience constructor for the paper's square grids (16x16 default)."""
    return MeshTopology(side, side, allocation, **kwargs)
