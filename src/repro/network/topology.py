"""Mesh grid topology (paper Section 3.2 and Figure 13).

A ``width x height`` mesh of T' nodes, with a G node on every link between
adjacent T' nodes (the virtual wires) and a purifier/corrector/logical-qubit
cluster attached to every T' node.  The topology is backed by a
:class:`networkx.Graph` so standard graph algorithms (connectivity checks,
shortest paths for validation, bisection estimates) are available, while the
routing used by the paper — dimension order — lives in
:mod:`repro.network.routing`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Tuple

import networkx as nx

from ..errors import ConfigurationError, RoutingError
from .geometry import Coordinate, iter_grid, manhattan_distance
from .nodes import ResourceAllocation


@dataclass(frozen=True)
class LinkId:
    """Identifier of the virtual wire between two adjacent T' nodes."""

    a: Coordinate
    b: Coordinate

    def __post_init__(self) -> None:
        if manhattan_distance(self.a, self.b) != 1:
            raise ConfigurationError(
                f"a link must join adjacent T' nodes, got {self.a} and {self.b}"
            )
        # Canonical orientation so LinkId(a, b) == LinkId(b, a).
        if (self.b.x, self.b.y) < (self.a.x, self.a.y):
            first, second = self.b, self.a
            object.__setattr__(self, "a", first)
            object.__setattr__(self, "b", second)

    @classmethod
    def between(cls, a: Coordinate, b: Coordinate) -> "LinkId":
        return cls(a, b)

    @property
    def horizontal(self) -> bool:
        return self.a.y == self.b.y

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.a}-{self.b}"


class MeshTopology:
    """A mesh of T' nodes with G nodes on links and P/C/LQ sites at nodes."""

    def __init__(
        self,
        width: int,
        height: int,
        allocation: ResourceAllocation | None = None,
        *,
        cells_per_hop: int = 600,
    ) -> None:
        if width < 1 or height < 1:
            raise ConfigurationError(f"mesh dimensions must be >= 1, got {width}x{height}")
        if cells_per_hop < 1:
            raise ConfigurationError(f"cells_per_hop must be >= 1, got {cells_per_hop}")
        self.width = width
        self.height = height
        self.allocation = allocation or ResourceAllocation()
        self.cells_per_hop = cells_per_hop
        self._graph = nx.Graph()
        self._links: Dict[LinkId, None] = {}
        self._build()

    def _build(self) -> None:
        for coord in iter_grid(self.width, self.height):
            self._graph.add_node(coord)
        for coord in iter_grid(self.width, self.height):
            for neighbour in coord.neighbours(self.width, self.height):
                if coord < neighbour:
                    link = LinkId(coord, neighbour)
                    self._graph.add_edge(coord, neighbour, link=link)
                    self._links[link] = None

    # -- structure ------------------------------------------------------------

    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph (nodes are :class:`Coordinate`)."""
        return self._graph

    @property
    def node_count(self) -> int:
        return self.width * self.height

    @property
    def link_count(self) -> int:
        return len(self._links)

    def nodes(self) -> Iterator[Coordinate]:
        """All T' node coordinates in row-major order."""
        return iter_grid(self.width, self.height)

    def links(self) -> Iterable[LinkId]:
        """All virtual-wire links."""
        return self._links.keys()

    def contains(self, coord: Coordinate) -> bool:
        return 0 <= coord.x < self.width and 0 <= coord.y < self.height

    def validate_node(self, coord: Coordinate) -> Coordinate:
        if not self.contains(coord):
            raise RoutingError(f"{coord} is outside the {self.width}x{self.height} mesh")
        return coord

    def are_adjacent(self, a: Coordinate, b: Coordinate) -> bool:
        return self._graph.has_edge(a, b)

    def link_between(self, a: Coordinate, b: Coordinate) -> LinkId:
        if not self.are_adjacent(a, b):
            raise RoutingError(f"no link between {a} and {b}")
        return LinkId(a, b)

    # -- distances ----------------------------------------------------------------

    def hop_distance(self, a: Coordinate, b: Coordinate) -> int:
        """Manhattan distance in hops between two T' nodes."""
        self.validate_node(a)
        self.validate_node(b)
        return manhattan_distance(a, b)

    def cell_distance(self, a: Coordinate, b: Coordinate) -> int:
        """Physical distance in ballistic cells between two T' nodes."""
        return self.hop_distance(a, b) * self.cells_per_hop

    def diameter_hops(self) -> int:
        """Longest Manhattan distance on the mesh (corner to corner)."""
        return (self.width - 1) + (self.height - 1)

    # -- resource accounting ------------------------------------------------------

    def total_teleporters(self) -> int:
        return self.node_count * self.allocation.teleporters_per_node

    def total_generators(self) -> int:
        return self.link_count * self.allocation.generators_per_node

    def total_purifiers(self) -> int:
        return self.node_count * self.allocation.purifiers_per_node

    def interconnect_area_units(self) -> int:
        """Area proxy: one unit per teleporter, generator and purifier."""
        return (
            self.total_teleporters() + self.total_generators() + self.total_purifiers()
        )

    def describe(self) -> str:
        return (
            f"MeshTopology {self.width}x{self.height}: "
            f"{self.node_count} T' nodes, {self.link_count} virtual wires, "
            f"allocation {self.allocation.label}, "
            f"{self.cells_per_hop} cells/hop"
        )

    # -- validation helpers ----------------------------------------------------------

    def shortest_path_length(self, a: Coordinate, b: Coordinate) -> int:
        """Graph-theoretic shortest path length (equals Manhattan distance)."""
        self.validate_node(a)
        self.validate_node(b)
        return nx.shortest_path_length(self._graph, a, b)

    def is_connected(self) -> bool:
        return nx.is_connected(self._graph)


def square_mesh(side: int, allocation: ResourceAllocation | None = None, **kwargs) -> MeshTopology:
    """Convenience constructor for the paper's square grids (16x16 default)."""
    return MeshTopology(side, side, allocation, **kwargs)
