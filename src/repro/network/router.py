"""The quantum router model (paper Figure 6).

A router (one per T' node) owns two sets of teleporters — one servicing
traffic moving in the X dimension, one servicing Y — plus a storage area for
incoming teleports and classical control that updates cumulative correction
information and makes the local routing decision.  Turning traffic must be
ballistically moved between the two teleporter sets.

This module is the *structural* model: it answers which teleporter set a
qubit needs, how many intra-router cells it must be shuttled, and how much
storage the node provides.  The queueing/timing behaviour is simulated by
:mod:`repro.sim.teleporter`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..errors import ConfigurationError, RoutingError
from .geometry import Coordinate
from .nodes import TeleporterSpec


class RouterPort(Enum):
    """The four mesh directions plus the local ejection port."""

    EAST = "east"
    WEST = "west"
    NORTH = "north"
    SOUTH = "south"
    LOCAL = "local"

    @property
    def dimension(self) -> str:
        """"x" for east/west, "y" for north/south, "local" otherwise."""
        if self in (RouterPort.EAST, RouterPort.WEST):
            return "x"
        if self in (RouterPort.NORTH, RouterPort.SOUTH):
            return "y"
        return "local"


def port_towards(at: Coordinate, towards: Coordinate) -> RouterPort:
    """Which output port leads from ``at`` to the adjacent node ``towards``."""
    dx, dy = towards.x - at.x, towards.y - at.y
    if (abs(dx) + abs(dy)) != 1:
        raise RoutingError(f"{towards} is not adjacent to {at}")
    if dx == 1:
        return RouterPort.EAST
    if dx == -1:
        return RouterPort.WEST
    if dy == 1:
        return RouterPort.NORTH
    return RouterPort.SOUTH


@dataclass(frozen=True)
class RouterTransit:
    """How one qubit moves through a router."""

    input_port: RouterPort
    output_port: RouterPort
    uses_x_set: bool
    uses_y_set: bool
    turn: bool
    intra_router_cells: int

    @property
    def ejected(self) -> bool:
        """True if the qubit leaves the network at this router."""
        return self.output_port is RouterPort.LOCAL


class QuantumRouter:
    """Structural model of one T' node's router.

    Parameters
    ----------
    position:
        Grid coordinate of the T' node.
    spec:
        Teleporter allocation for the node.
    turn_cells / straight_cells / eject_cells:
        Ballistic distances (in cells) for the three kinds of intra-router
        movement: turning between the X and Y teleporter sets, passing
        straight through one set, and ejecting to the local C/P nodes.
    """

    def __init__(
        self,
        position: Coordinate,
        spec: TeleporterSpec | None = None,
        *,
        turn_cells: int = 20,
        straight_cells: int = 10,
        eject_cells: int = 30,
    ) -> None:
        if turn_cells < 0 or straight_cells < 0 or eject_cells < 0:
            raise ConfigurationError("intra-router distances must be non-negative")
        self.position = position
        self.spec = spec or TeleporterSpec()
        self.turn_cells = turn_cells
        self.straight_cells = straight_cells
        self.eject_cells = eject_cells

    # -- capacities ----------------------------------------------------------

    @property
    def x_teleporters(self) -> int:
        """Teleporters dedicated to X-dimension traffic."""
        return self.spec.per_direction

    @property
    def y_teleporters(self) -> int:
        """Teleporters dedicated to Y-dimension traffic."""
        return self.spec.per_direction

    @property
    def storage_cells(self) -> int:
        """Incoming-teleport storage (t per link, four links)."""
        return self.spec.storage_cells

    # -- transit planning -------------------------------------------------------

    def plan_transit(
        self,
        previous: Optional[Coordinate],
        next_node: Optional[Coordinate],
    ) -> RouterTransit:
        """Plan how a qubit moves through this router.

        ``previous`` is the adjacent node the qubit arrived from (None when
        the qubit is injected locally, e.g. fresh from a G node), and
        ``next_node`` the adjacent node it continues to (None when this router
        is the channel endpoint).
        """
        input_port = RouterPort.LOCAL if previous is None else port_towards(self.position, previous)
        output_port = RouterPort.LOCAL if next_node is None else port_towards(self.position, next_node)

        if output_port is RouterPort.LOCAL:
            uses_x = input_port.dimension == "x"
            uses_y = input_port.dimension == "y"
            return RouterTransit(
                input_port=input_port,
                output_port=output_port,
                uses_x_set=uses_x,
                uses_y_set=uses_y,
                turn=False,
                intra_router_cells=self.eject_cells,
            )

        out_dim = output_port.dimension
        in_dim = input_port.dimension
        turn = in_dim in ("x", "y") and out_dim in ("x", "y") and in_dim != out_dim
        cells = self.turn_cells if turn else self.straight_cells
        return RouterTransit(
            input_port=input_port,
            output_port=output_port,
            uses_x_set=out_dim == "x",
            uses_y_set=out_dim == "y",
            turn=turn,
            intra_router_cells=cells,
        )

    def teleporters_for(self, transit: RouterTransit) -> int:
        """How many teleporters serve the set the transit occupies."""
        if transit.uses_x_set:
            return self.x_teleporters
        if transit.uses_y_set:
            return self.y_teleporters
        return self.spec.teleporters

    def describe(self) -> str:
        return (
            f"QuantumRouter@{self.position}: t={self.spec.teleporters} "
            f"({self.x_teleporters} X + {self.y_teleporters} Y), "
            f"storage={self.storage_cells} cells"
        )
