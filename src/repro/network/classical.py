"""Classical control network model (paper Sections 3.2 and 6).

Teleportation and purification both require classical bits to be exchanged
between channel endpoints, and every moving EPR qubit is shadowed by an ID
packet.  The paper concludes the classical network must sustain one in-flight
message per physical qubit plus the teleportation/purification bits.  This
module provides a latency model (used by the timing formulas) and a bandwidth
estimator (used in reports).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..physics.parameters import IonTrapParameters
from .messages import ClassicalMessage


@dataclass(frozen=True)
class ClassicalTrafficEstimate:
    """Classical bandwidth needed to support a communication workload."""

    messages_per_second: float
    bits_per_second: float
    in_flight_messages: float

    def describe(self) -> str:
        return (
            f"ClassicalTraffic(msgs/s={self.messages_per_second:.3g}, "
            f"bits/s={self.bits_per_second:.3g}, in-flight={self.in_flight_messages:.3g})"
        )


class ClassicalNetworkModel:
    """Latency and bandwidth model of the parallel classical network."""

    def __init__(self, params: IonTrapParameters | None = None) -> None:
        self.params = params or IonTrapParameters.default()

    def latency_us(self, distance_cells: float) -> float:
        """One-way classical latency across ``distance_cells``."""
        if distance_cells < 0:
            raise ConfigurationError(f"distance_cells must be non-negative, got {distance_cells}")
        return self.params.times.classical(distance_cells)

    def round_trip_us(self, distance_cells: float) -> float:
        """Round-trip classical latency across ``distance_cells``."""
        return 2.0 * self.latency_us(distance_cells)

    def teleport_bits(self) -> int:
        """Classical bits transmitted per teleportation (two measurement bits)."""
        return 2

    def purification_bits(self) -> int:
        """Classical bits exchanged per purification round (one each way)."""
        return 2

    def estimate_traffic(
        self,
        teleports_per_second: float,
        purifications_per_second: float,
        pairs_in_flight: float,
    ) -> ClassicalTrafficEstimate:
        """Estimate the classical bandwidth a workload needs.

        ``pairs_in_flight`` is the number of EPR qubits simultaneously moving
        through the network, each shadowed by one ID packet.
        """
        if min(teleports_per_second, purifications_per_second, pairs_in_flight) < 0:
            raise ConfigurationError("traffic rates must be non-negative")
        packet_bits = ClassicalMessage().size_bits
        messages = teleports_per_second + purifications_per_second + pairs_in_flight
        bits = (
            teleports_per_second * (self.teleport_bits() + packet_bits)
            + purifications_per_second * self.purification_bits()
            + pairs_in_flight * packet_bits
        )
        return ClassicalTrafficEstimate(
            messages_per_second=messages,
            bits_per_second=bits,
            in_flight_messages=pairs_in_flight,
        )
