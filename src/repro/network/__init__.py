"""Mesh interconnect substrate: topology, routing, routers and layouts.

Models the structural side of Section 3 and Section 5 of the paper: a 2-D
mesh of teleporter (T') nodes joined by virtual wires (G nodes on every link),
with corrector (C), purifier (P) and logical-qubit (LQ) sites attached, and a
parallel classical control network.
"""

from .geometry import Coordinate, manhattan_distance
from .nodes import (
    GeneratorSpec,
    LogicalQubitSite,
    NodeKind,
    PurifierSpec,
    ResourceAllocation,
    TeleporterSpec,
)
from .topology import MeshTopology
from .fabrics import build_topology, list_topologies, register_topology
from .routing import DimensionOrder, Path, dimension_order_route
from .router import QuantumRouter, RouterPort
from .messages import ClassicalMessage, PauliFrame
from .classical import ClassicalNetworkModel
from .layout import HomeBaseLayout, MachineLayout, MobileQubitLayout

__all__ = [
    "ClassicalMessage",
    "ClassicalNetworkModel",
    "Coordinate",
    "DimensionOrder",
    "GeneratorSpec",
    "HomeBaseLayout",
    "LogicalQubitSite",
    "MachineLayout",
    "MeshTopology",
    "MobileQubitLayout",
    "NodeKind",
    "PauliFrame",
    "Path",
    "PurifierSpec",
    "QuantumRouter",
    "ResourceAllocation",
    "RouterPort",
    "TeleporterSpec",
    "build_topology",
    "dimension_order_route",
    "list_topologies",
    "manhattan_distance",
    "register_topology",
]
