"""Hierarchical datacenter-scale fabrics: fat-tree, leaf-spine, dragonfly.

The paper's interconnect study stops at low-dimensional meshes; these fabrics
are the thousand-node shapes the roadmap calls for, where *path choice* — not
just max-min rate allocation — decides contention.  All three lay their nodes
out on tiered coordinates:

* ``y = 0`` — hosts, one LQ cluster each (the only tier that holds logical
  qubits; :attr:`qubit_capacity` is the host count);
* ``y >= 1`` — switches (edge/aggregation/core for the fat-tree, leaves and
  spines for the Clos, routers for the dragonfly), pure forwarding elements.

``x`` is the index within a tier, so the row-major qubit placement of
:class:`~repro.network.layout.MachineLayout` lands every qubit on a host
without knowing anything about fabrics.  Inter-tier (and dragonfly
intra-tier) wires are *express* links — adjacent by construction of the
fabric graph rather than by grid geometry (see
:class:`~repro.network.topology.LinkId`) — and every hop that stays on one
tier services the X teleporter set while tier-crossing hops service Y,
exactly the Figure 6 router split the mesh fabrics use.

Unlike the single deterministic dimension-order route of the mesh family,
each fabric enumerates *all* candidate paths per endpoint pair
(:meth:`HierarchicalTopology.enumerate_paths`): every equal-cost minimal path
plus, on the dragonfly, the Valiant non-minimal detours through each other
group.  The :class:`~repro.network.routing.LoadBalancer` policies pick among
them at channel-open time; with no balancer configured the planner takes
``candidates[0]``, a fixed minimal path.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import networkx as nx

from ..errors import ConfigurationError, RoutingError
from .geometry import Coordinate
from .nodes import ResourceAllocation
from .routing import Path
from .topology import MeshTopology


class HierarchicalTopology(MeshTopology):
    """Common machinery of the tiered multi-path fabrics.

    Subclasses set their structural parameters before calling
    ``super().__init__`` (which triggers :meth:`_build`), implement
    :meth:`_build` by wiring hosts and switches with express links, and
    implement :meth:`_minimal_paths`/:meth:`_nonminimal_paths` in terms of
    host endpoints.  Everything the simulation stack consumes — node/link
    iteration, adjacency, hop distances, resource accounting — is inherited
    or derived from the fabric graph, so the machine, both transport
    backends and the verify harness treat these fabrics exactly like meshes.
    """

    #: Overridden by subclasses; used in descriptions and ``fabric``.
    family = "hierarchical"

    def __init__(
        self,
        host_count: int,
        tiers: int,
        allocation: ResourceAllocation | None = None,
        *,
        cells_per_hop: int = 600,
    ) -> None:
        self.host_count = host_count
        self._ordered_nodes: List[Coordinate] = []
        self._hop_cache: Dict[Tuple[Coordinate, Coordinate], int] = {}
        # width = host tier width, height = tier count: the layout's
        # row-major placement then puts qubits 1..host_count on tier 0.
        super().__init__(host_count, tiers, allocation, cells_per_hop=cells_per_hop)

    # -- structure ------------------------------------------------------------

    def _add_node(self, coord: Coordinate) -> None:
        self._graph.add_node(coord)
        self._ordered_nodes.append(coord)

    @property
    def node_count(self) -> int:
        return len(self._ordered_nodes)

    @property
    def qubit_capacity(self) -> int:
        """Only hosts carry LQ clusters; switch tiers hold no qubits."""
        return self.host_count

    def nodes(self) -> Iterator[Coordinate]:
        """All nodes, hosts first, in deterministic construction order."""
        return iter(self._ordered_nodes)

    def contains(self, coord: Coordinate) -> bool:
        return coord in self._graph

    def host(self, index: int) -> Coordinate:
        """The ``index``-th host (0-based), i.e. LQ site ``index``."""
        if not 0 <= index < self.host_count:
            raise ConfigurationError(
                f"host index {index} out of range 0..{self.host_count - 1}"
            )
        return Coordinate(index, 0)

    def is_host(self, coord: Coordinate) -> bool:
        return coord.y == 0 and 0 <= coord.x < self.host_count

    def worst_case_endpoints(self) -> Tuple[Coordinate, Coordinate]:
        """The endpoint pair of the longest minimal route (first/last host)."""
        return self.host(0), self.host(self.host_count - 1)

    # -- distances ------------------------------------------------------------

    def hop_distance(self, a: Coordinate, b: Coordinate) -> int:
        """Hop distance on the fabric graph (memoized BFS, not Manhattan)."""
        self.validate_node(a)
        self.validate_node(b)
        key = (a, b) if (a.x, a.y) <= (b.x, b.y) else (b, a)
        cached = self._hop_cache.get(key)
        if cached is None:
            cached = nx.shortest_path_length(self._graph, key[0], key[1])
            self._hop_cache[key] = cached
        return cached

    # -- candidate enumeration -------------------------------------------------

    def enumerate_paths(self, source: Coordinate, destination: Coordinate) -> Tuple[Path, ...]:
        """All candidate paths: equal-cost minimal first, then non-minimal.

        The order is deterministic (a structural function of the endpoints),
        so ``candidates[0]`` is a stable policy-free default and every
        balancer's index choice replays identically across backends, runs and
        processes.  Host-to-host pairs get the fabric's full enumeration;
        switch endpoints (possible in service mode, where traffic may target
        any T' node) fall back to the single BFS shortest path.
        """
        self.validate_node(source)
        self.validate_node(destination)
        if source == destination:
            raise RoutingError(f"no path needed from {source} to itself")
        if not (self.is_host(source) and self.is_host(destination)):
            nodes = nx.shortest_path(self._graph, source, destination)
            return (self._path(nodes),)
        minimal = self._minimal_paths(source, destination)
        return tuple(minimal) + tuple(self._nonminimal_paths(source, destination))

    def _minimal_paths(self, source: Coordinate, destination: Coordinate) -> List[Path]:
        raise NotImplementedError

    def _nonminimal_paths(self, source: Coordinate, destination: Coordinate) -> List[Path]:
        """Non-minimal candidates; empty unless the fabric offers detours."""
        return []

    def _path(self, nodes: "list[Coordinate] | tuple[Coordinate, ...]") -> Path:
        return Path(tuple(nodes), express=True)

    def describe(self) -> str:
        return (
            f"{type(self).__name__} ({self.fabric}): {self.host_count} hosts, "
            f"{self.node_count - self.host_count} switches, "
            f"{self.link_count} virtual wires, allocation {self.allocation.label}, "
            f"{self.cells_per_hop} cells/hop"
        )

    @property
    def fabric(self) -> str:
        return self.family


class FatTreeTopology(HierarchicalTopology):
    """A k-ary fat-tree: k pods of k/2 edge + k/2 aggregation switches,
    (k/2)^2 core switches, k^3/4 hosts (Al-Fares et al.'s rearrangeably
    non-blocking Clos).  Tiers: hosts (y=0), edge (y=1), aggregation (y=2),
    core (y=3).

    Between hosts in different pods there are (k/2)^2 equal-cost paths — one
    per (aggregation switch, core switch) choice — all of length 6; same-pod
    pairs have k/2 four-hop paths and same-edge pairs a single two-hop one.
    """

    family = "fat_tree"

    def __init__(
        self,
        arity: int,
        allocation: ResourceAllocation | None = None,
        *,
        cells_per_hop: int = 600,
    ) -> None:
        if arity < 2 or arity % 2:
            raise ConfigurationError(f"a fat-tree needs an even arity >= 2, got {arity}")
        self.arity = arity
        self.half = arity // 2
        self.pods = arity
        super().__init__(
            arity**3 // 4, 4, allocation, cells_per_hop=cells_per_hop
        )

    def _edge(self, index: int) -> Coordinate:
        return Coordinate(index, 1)

    def _agg(self, index: int) -> Coordinate:
        return Coordinate(index, 2)

    def _core(self, index: int) -> Coordinate:
        return Coordinate(index, 3)

    def _build(self) -> None:
        half, pods = self.half, self.pods
        for index in range(self.host_count):
            self._add_node(Coordinate(index, 0))
        for index in range(pods * half):
            self._add_node(self._edge(index))
        for index in range(pods * half):
            self._add_node(self._agg(index))
        for index in range(half * half):
            self._add_node(self._core(index))
        for index in range(self.host_count):
            self._add_link(Coordinate(index, 0), self._edge(index // half), express=True)
        for pod in range(pods):
            for i in range(half):
                for j in range(half):
                    self._add_link(
                        self._edge(pod * half + i), self._agg(pod * half + j), express=True
                    )
        for pod in range(pods):
            for j in range(half):
                for m in range(half):
                    self._add_link(
                        self._agg(pod * half + j), self._core(j * half + m), express=True
                    )

    def _minimal_paths(self, source: Coordinate, destination: Coordinate) -> List[Path]:
        half = self.half
        edge_a, edge_b = source.x // half, destination.x // half
        if edge_a == edge_b:
            return [self._path((source, self._edge(edge_a), destination))]
        pod_a, pod_b = edge_a // half, edge_b // half
        if pod_a == pod_b:
            return [
                self._path(
                    (
                        source,
                        self._edge(edge_a),
                        self._agg(pod_a * half + j),
                        self._edge(edge_b),
                        destination,
                    )
                )
                for j in range(half)
            ]
        return [
            self._path(
                (
                    source,
                    self._edge(edge_a),
                    self._agg(pod_a * half + j),
                    self._core(j * half + m),
                    self._agg(pod_b * half + j),
                    self._edge(edge_b),
                    destination,
                )
            )
            for j in range(half)
            for m in range(half)
        ]

    def diameter_hops(self) -> int:
        return 6


class LeafSpineTopology(HierarchicalTopology):
    """A two-tier Clos: every leaf connects to every spine.

    ``hosts_per_leaf / spines`` is the oversubscription ratio (1.0 =
    rearrangeably non-blocking).  Inter-leaf pairs have one four-hop
    candidate per spine; same-leaf pairs a single two-hop path.
    """

    family = "leaf_spine"

    def __init__(
        self,
        leaves: int,
        spines: int,
        hosts_per_leaf: int,
        allocation: ResourceAllocation | None = None,
        *,
        cells_per_hop: int = 600,
    ) -> None:
        if leaves < 2:
            raise ConfigurationError(f"a leaf-spine fabric needs >= 2 leaves, got {leaves}")
        if spines < 1:
            raise ConfigurationError(f"a leaf-spine fabric needs >= 1 spine, got {spines}")
        if hosts_per_leaf < 1:
            raise ConfigurationError(
                f"a leaf-spine fabric needs >= 1 host per leaf, got {hosts_per_leaf}"
            )
        self.leaves = leaves
        self.spines = spines
        self.hosts_per_leaf = hosts_per_leaf
        super().__init__(
            leaves * hosts_per_leaf, 3, allocation, cells_per_hop=cells_per_hop
        )

    @property
    def oversubscription(self) -> float:
        return self.hosts_per_leaf / self.spines

    def _leaf(self, index: int) -> Coordinate:
        return Coordinate(index, 1)

    def _spine(self, index: int) -> Coordinate:
        return Coordinate(index, 2)

    def _build(self) -> None:
        for index in range(self.host_count):
            self._add_node(Coordinate(index, 0))
        for index in range(self.leaves):
            self._add_node(self._leaf(index))
        for index in range(self.spines):
            self._add_node(self._spine(index))
        for index in range(self.host_count):
            self._add_link(
                Coordinate(index, 0), self._leaf(index // self.hosts_per_leaf), express=True
            )
        for leaf in range(self.leaves):
            for spine in range(self.spines):
                self._add_link(self._leaf(leaf), self._spine(spine), express=True)

    def _minimal_paths(self, source: Coordinate, destination: Coordinate) -> List[Path]:
        leaf_a = source.x // self.hosts_per_leaf
        leaf_b = destination.x // self.hosts_per_leaf
        if leaf_a == leaf_b:
            return [self._path((source, self._leaf(leaf_a), destination))]
        return [
            self._path(
                (source, self._leaf(leaf_a), self._spine(s), self._leaf(leaf_b), destination)
            )
            for s in range(self.spines)
        ]

    def diameter_hops(self) -> int:
        return 4


class DragonflyTopology(HierarchicalTopology):
    """Groups of fully-meshed routers with one global link per group pair.

    Routers sit on tier 1 (group ``g``'s routers at ``x = g*a .. g*a+a-1``),
    hosts on tier 0.  The global link between groups ``i < j`` attaches to
    router ``(j-1) % a`` of group ``i`` and router ``i % a`` of group ``j``
    (round-robin, so global links spread over a group's routers).  Between
    groups there is exactly one minimal path — via the direct global link —
    plus one Valiant non-minimal candidate per intermediate group, which is
    what lets the adaptive policy shed load off a hot global link.
    """

    family = "dragonfly"

    def __init__(
        self,
        groups: int,
        routers_per_group: int,
        hosts_per_router: int,
        allocation: ResourceAllocation | None = None,
        *,
        cells_per_hop: int = 600,
    ) -> None:
        if groups < 2:
            raise ConfigurationError(f"a dragonfly needs >= 2 groups, got {groups}")
        if routers_per_group < 1:
            raise ConfigurationError(
                f"a dragonfly needs >= 1 router per group, got {routers_per_group}"
            )
        if hosts_per_router < 1:
            raise ConfigurationError(
                f"a dragonfly needs >= 1 host per router, got {hosts_per_router}"
            )
        self.groups = groups
        self.routers_per_group = routers_per_group
        self.hosts_per_router = hosts_per_router
        super().__init__(
            groups * routers_per_group * hosts_per_router,
            2,
            allocation,
            cells_per_hop=cells_per_hop,
        )

    def _router(self, group: int, index: int) -> Coordinate:
        return Coordinate(group * self.routers_per_group + index, 1)

    def _router_of_host(self, host: Coordinate) -> Coordinate:
        return Coordinate(host.x // self.hosts_per_router, 1)

    def _group_of(self, router: Coordinate) -> int:
        return router.x // self.routers_per_group

    def _gateway(self, group: int, other: int) -> Coordinate:
        """The router of ``group`` carrying the global link toward ``other``."""
        index = (other - 1 if other > group else other) % self.routers_per_group
        return self._router(group, index)

    def _build(self) -> None:
        a = self.routers_per_group
        for index in range(self.host_count):
            self._add_node(Coordinate(index, 0))
        for index in range(self.groups * a):
            self._add_node(Coordinate(index, 1))
        for index in range(self.host_count):
            host = Coordinate(index, 0)
            self._add_link(host, self._router_of_host(host), express=True)
        for group in range(self.groups):
            for i in range(a):
                for j in range(i + 1, a):
                    self._add_link(self._router(group, i), self._router(group, j), express=True)
        for i in range(self.groups):
            for j in range(i + 1, self.groups):
                self._add_link(self._gateway(i, j), self._gateway(j, i), express=True)

    def _route_via_groups(
        self, source: Coordinate, destination: Coordinate, groups: "list[int]"
    ) -> Path:
        """Walk the group sequence, inserting intra-group hops as needed."""
        nodes: List[Coordinate] = [source, self._router_of_host(source)]
        for here, nxt in zip(groups, groups[1:]):
            exit_router = self._gateway(here, nxt)
            if nodes[-1] != exit_router:
                nodes.append(exit_router)
            nodes.append(self._gateway(nxt, here))
        last_router = self._router_of_host(destination)
        if nodes[-1] != last_router:
            nodes.append(last_router)
        nodes.append(destination)
        return self._path(nodes)

    def _minimal_paths(self, source: Coordinate, destination: Coordinate) -> List[Path]:
        router_a = self._router_of_host(source)
        router_b = self._router_of_host(destination)
        if router_a == router_b:
            return [self._path((source, router_a, destination))]
        group_a, group_b = self._group_of(router_a), self._group_of(router_b)
        if group_a == group_b:
            return [self._path((source, router_a, router_b, destination))]
        return [self._route_via_groups(source, destination, [group_a, group_b])]

    def _nonminimal_paths(self, source: Coordinate, destination: Coordinate) -> List[Path]:
        group_a = self._group_of(self._router_of_host(source))
        group_b = self._group_of(self._router_of_host(destination))
        if group_a == group_b:
            return []
        return [
            self._route_via_groups(source, destination, [group_a, via, group_b])
            for via in range(self.groups)
            if via not in (group_a, group_b)
        ]

    def diameter_hops(self) -> int:
        if self.groups > 1:
            return 3 + (2 if self.routers_per_group > 1 else 0)
        return 3 if self.routers_per_group > 1 else 2


__all__ = [
    "HierarchicalTopology",
    "FatTreeTopology",
    "LeafSpineTopology",
    "DragonflyTopology",
]
