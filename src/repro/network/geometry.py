"""Grid geometry helpers.

The interconnect is a 2-D mesh; T' nodes sit at integer grid coordinates and
paths are measured in Manhattan (dimension-ordered) distance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..errors import ConfigurationError


@dataclass(frozen=True, order=True)
class Coordinate:
    """A position on the mesh grid (column ``x``, row ``y``)."""

    x: int
    y: int

    def __post_init__(self) -> None:
        if self.x < 0 or self.y < 0:
            raise ConfigurationError(f"coordinates must be non-negative, got ({self.x}, {self.y})")

    def manhattan(self, other: "Coordinate") -> int:
        """Manhattan distance to another coordinate."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def neighbours(self, width: int, height: int) -> List["Coordinate"]:
        """In-grid 4-neighbours for a ``width`` x ``height`` mesh."""
        candidates = [
            (self.x - 1, self.y),
            (self.x + 1, self.y),
            (self.x, self.y - 1),
            (self.x, self.y + 1),
        ]
        return [
            Coordinate(x, y)
            for x, y in candidates
            if 0 <= x < width and 0 <= y < height
        ]

    def as_tuple(self) -> Tuple[int, int]:
        return (self.x, self.y)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.x},{self.y})"


def manhattan_distance(a: Coordinate, b: Coordinate) -> int:
    """Manhattan distance between two grid coordinates."""
    return a.manhattan(b)


def iter_grid(width: int, height: int) -> Iterator[Coordinate]:
    """Iterate all coordinates of a ``width`` x ``height`` grid in row-major order."""
    if width <= 0 or height <= 0:
        raise ConfigurationError(f"grid dimensions must be positive, got {width}x{height}")
    for y in range(height):
        for x in range(width):
            yield Coordinate(x, y)


def midpoint(a: Coordinate, b: Coordinate) -> Coordinate:
    """Grid coordinate nearest the midpoint of ``a`` and ``b``.

    Used to pick the generator node that seeds a channel (the paper generates
    the to-be-delivered EPR pair near the middle of the path).
    """
    return Coordinate((a.x + b.x) // 2, (a.y + b.y) // 2)
