"""Node kinds and resource allocations for the mesh interconnect.

The paper's datapath contains five unit types (Section 5): Teleporters (T'),
Purifiers (P), Generators (G), Logical Qubits (LQ) and Wires.  This module
defines value objects describing their capacities; the live simulation
behaviour lives in :mod:`repro.sim`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import ConfigurationError
from .geometry import Coordinate


class NodeKind(Enum):
    """Unit types placed on the interconnect fabric."""

    TELEPORTER = "T"
    GENERATOR = "G"
    PURIFIER = "P"
    CORRECTOR = "C"
    LOGICAL_QUBIT = "LQ"


@dataclass(frozen=True)
class TeleporterSpec:
    """A T' node: two sets of teleporters plus incoming storage.

    ``teleporters`` is the total count *t*; the router splits them evenly into
    an X set and a Y set (Figure 6).  Storage is ``t`` cells per incoming link
    (4t per node) so incoming teleports are never multiplexed, which is the
    paper's deadlock-avoidance rule.
    """

    teleporters: int = 1

    def __post_init__(self) -> None:
        if self.teleporters < 1:
            raise ConfigurationError(f"teleporters must be >= 1, got {self.teleporters}")

    @property
    def per_direction(self) -> int:
        """Teleporters available to each of the X and Y sets."""
        return max(self.teleporters // 2, 1)

    @property
    def storage_cells(self) -> int:
        """Storage cells for incoming teleports (t per incoming link, 4 links)."""
        return 4 * self.teleporters


@dataclass(frozen=True)
class GeneratorSpec:
    """A G node: ``generators`` parallel EPR-pair factories on one link."""

    generators: int = 1

    def __post_init__(self) -> None:
        if self.generators < 1:
            raise ConfigurationError(f"generators must be >= 1, got {self.generators}")


@dataclass(frozen=True)
class PurifierSpec:
    """A P node: ``purifiers`` queue purifiers of depth ``queue_depth``."""

    purifiers: int = 1
    queue_depth: int = 3

    def __post_init__(self) -> None:
        if self.purifiers < 1:
            raise ConfigurationError(f"purifiers must be >= 1, got {self.purifiers}")
        if self.queue_depth < 1:
            raise ConfigurationError(f"queue_depth must be >= 1, got {self.queue_depth}")


@dataclass(frozen=True)
class LogicalQubitSite:
    """An LQ node: home of one (or two) logical qubits.

    ``capacity`` is 2 for the Home Base layout (room for the resident logical
    qubit plus a visitor) and 2 for the Mobile Qubit layout as well, but in the
    latter no qubit is considered "resident".
    """

    position: Coordinate
    capacity: int = 2
    resident: int | None = None

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {self.capacity}")


@dataclass(frozen=True)
class ResourceAllocation:
    """The (t, g, p) resource allocation swept in Figure 16.

    Attributes
    ----------
    teleporters_per_node:
        Teleporters per T' node (*t*).
    generators_per_node:
        Generators per G node (*g*).
    purifiers_per_node:
        Queue purifiers per P node (*p*).
    queue_depth:
        Purification tree depth implemented by each queue purifier.
    """

    teleporters_per_node: int = 1
    generators_per_node: int = 1
    purifiers_per_node: int = 1
    queue_depth: int = 3

    def __post_init__(self) -> None:
        for name in ("teleporters_per_node", "generators_per_node", "purifiers_per_node"):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1, got {getattr(self, name)}")
        if self.queue_depth < 1:
            raise ConfigurationError(f"queue_depth must be >= 1, got {self.queue_depth}")

    @classmethod
    def uniform(cls, count: int, queue_depth: int = 3) -> "ResourceAllocation":
        """t = g = p = ``count`` (the paper's normalisation point uses 1024)."""
        return cls(count, count, count, queue_depth)

    @classmethod
    def ratio(cls, purifiers: int, ratio: int, queue_depth: int = 3) -> "ResourceAllocation":
        """t = g = ``ratio`` * p with p = ``purifiers`` (Figure 16 sweeps)."""
        if ratio < 1:
            raise ConfigurationError(f"ratio must be >= 1, got {ratio}")
        return cls(purifiers * ratio, purifiers * ratio, purifiers, queue_depth)

    @property
    def label(self) -> str:
        t, g, p = self.teleporters_per_node, self.generators_per_node, self.purifiers_per_node
        if t == g == p:
            return f"t=g=p={t}"
        if t == g and p and t % p == 0:
            return f"t=g={t // p}p (p={p})"
        return f"t={t},g={g},p={p}"

    @property
    def teleporter_spec(self) -> TeleporterSpec:
        return TeleporterSpec(self.teleporters_per_node)

    @property
    def generator_spec(self) -> GeneratorSpec:
        return GeneratorSpec(self.generators_per_node)

    @property
    def purifier_spec(self) -> PurifierSpec:
        return PurifierSpec(self.purifiers_per_node, self.queue_depth)

    def area_units(self) -> int:
        """Crude interconnect-area proxy: total units per grid tile.

        Used when comparing allocations under a fixed area budget, as the
        paper does when it trades T'/G size against P size.
        """
        return (
            self.teleporters_per_node
            + self.generators_per_node
            + self.purifiers_per_node
        )
