"""Classical control messages and Pauli correction frames (paper Section 3.2).

Every EPR qubit moving through the network is shadowed by a classical message
carrying its identity, its destination, its partner's destination and the
cumulative correction information accumulated over chained teleportations.
Corrections are Pauli operators, so the cumulative record is a *Pauli frame*:
two bits (X component, Z component) that compose by XOR.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import count
from typing import Optional, Tuple

from ..errors import ConfigurationError

_message_ids = count()


@dataclass(frozen=True)
class PauliFrame:
    """Accumulated Pauli correction (X and Z components compose by XOR)."""

    x: bool = False
    z: bool = False

    def compose(self, other: "PauliFrame") -> "PauliFrame":
        """Combine with another frame (group operation of the Pauli group mod phase)."""
        return PauliFrame(self.x ^ other.x, self.z ^ other.z)

    def apply_teleport_outcome(self, bit_x: int, bit_z: int) -> "PauliFrame":
        """Fold in the two classical bits produced by one teleportation."""
        if bit_x not in (0, 1) or bit_z not in (0, 1):
            raise ConfigurationError("teleport outcome bits must be 0 or 1")
        return self.compose(PauliFrame(bool(bit_x), bool(bit_z)))

    @property
    def identity(self) -> bool:
        """True when no correction is pending."""
        return not (self.x or self.z)

    @property
    def label(self) -> str:
        if self.x and self.z:
            return "Y"
        if self.x:
            return "X"
        if self.z:
            return "Z"
        return "I"

    @property
    def bits(self) -> Tuple[int, int]:
        return (int(self.x), int(self.z))


@dataclass(frozen=True)
class ClassicalMessage:
    """The ID packet that travels alongside an EPR qubit.

    Attributes mirror the paper's description: the ID assigned by the G node,
    the qubit's destination, its partner's destination (needed for endpoint
    purification pairing) and the cumulative correction frame.
    """

    qubit_id: int = field(default_factory=lambda: next(_message_ids))
    destination: Optional[object] = None
    partner_destination: Optional[object] = None
    correction: PauliFrame = field(default_factory=PauliFrame)
    hop_count: int = 0

    def advanced(self, bit_x: int, bit_z: int) -> "ClassicalMessage":
        """Message after one more chained teleportation hop."""
        return replace(
            self,
            correction=self.correction.apply_teleport_outcome(bit_x, bit_z),
            hop_count=self.hop_count + 1,
        )

    def retargeted(self, destination: object, partner_destination: object) -> "ClassicalMessage":
        """Message with (re)assigned endpoint destinations."""
        return replace(
            self, destination=destination, partner_destination=partner_destination
        )

    @property
    def size_bits(self) -> int:
        """Approximate size of the packet in classical bits.

        32-bit ID, two 16-bit destinations, 2 correction bits and an 8-bit hop
        counter — a concrete stand-in for estimating classical network
        bandwidth requirements.
        """
        return 32 + 16 + 16 + 2 + 8
