"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so a
caller can catch library-specific failures without catching unrelated Python
errors.  Sub-classes separate the three broad failure categories the paper's
system can hit: bad configuration, physically infeasible requests (e.g. a
purification target above the protocol's maximum achievable fidelity), and
simulation-level failures (deadlock, unroutable traffic).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A parameter, layout or machine description is invalid."""


class FidelityError(ReproError):
    """A fidelity or error probability is out of its physical range."""


class InfeasibleError(ReproError):
    """The requested operation cannot be achieved with the given physics.

    Raised, for example, when purification cannot reach the fault-tolerance
    threshold because the operation error rate is too high (the breakdown
    regime shown in Figure 12 of the paper).
    """


class ScenarioError(ConfigurationError):
    """A declarative scenario spec is malformed or names unknown components."""


class RoutingError(ReproError):
    """A path could not be constructed between two network nodes."""


class SimulationError(ReproError):
    """The event-driven simulator reached an inconsistent state."""


class SchedulingError(ReproError):
    """The instruction scheduler detected an invalid instruction stream."""
