"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so a
caller can catch library-specific failures without catching unrelated Python
errors.  Sub-classes separate the three broad failure categories the paper's
system can hit: bad configuration, physically infeasible requests (e.g. a
purification target above the protocol's maximum achievable fidelity), and
simulation-level failures (deadlock, unroutable traffic).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A parameter, layout or machine description is invalid."""


class FidelityError(ReproError):
    """A fidelity or error probability is out of its physical range."""


class InfeasibleError(ReproError):
    """The requested operation cannot be achieved with the given physics.

    Raised, for example, when purification cannot reach the fault-tolerance
    threshold because the operation error rate is too high (the breakdown
    regime shown in Figure 12 of the paper).
    """


class ScenarioError(ConfigurationError):
    """A declarative scenario spec is malformed or names unknown components."""


class RoutingError(ReproError):
    """A path could not be constructed between two network nodes."""


class SimulationError(ReproError):
    """The event-driven simulator reached an inconsistent state."""


class SchedulingError(ReproError):
    """The instruction scheduler detected an invalid instruction stream."""


class SweepError(ReproError):
    """One or more sweep points failed after fault isolation and retries.

    The sharded work queue never lets a poisoned grid point abort its
    siblings: every other point completes (and is journaled) first, then the
    collected failures surface as one exception.  ``errors`` maps each failed
    point's cache key to its structured error record (type, message,
    formatted traceback).
    """

    def __init__(self, message: str, errors: "dict[str, dict[str, object]] | None" = None):
        super().__init__(message)
        self.errors = dict(errors or {})
