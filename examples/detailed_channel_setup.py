"""Watch one channel being set up at individual EPR-pair granularity.

The flow simulator treats channel setup as a fluid; this example runs the
detailed event-driven model instead: raw pairs are pulled from the virtual
wire buffers, swapped through every intermediate router (queueing for its X or
Y teleporter set) and climbed through the endpoint queue purifier until enough
above-threshold pairs exist to teleport a logical qubit.

Run with:  python examples/detailed_channel_setup.py
"""

from repro import Coordinate, QuantumMachine, ResourceAllocation
from repro.core.logical import STEANE_LEVEL_1
from repro.sim.channel_setup import DetailedChannelSetup
from repro.sim.qpurifier import QueuePurifierModel


def main() -> None:
    machine = QuantumMachine(
        8,
        allocation=ResourceAllocation(teleporters_per_node=4, generators_per_node=4, purifiers_per_node=2),
        encoding=STEANE_LEVEL_1,  # 7 physical qubits per logical qubit keeps the run small
    )
    source, destination = Coordinate(0, 0), Coordinate(5, 4)
    plan = machine.planner.plan(source, destination)
    print(plan.describe())
    print(f"Endpoint purification depth: {plan.budget.endpoint_rounds} rounds")
    print()

    setup = DetailedChannelSetup(machine, plan)
    result = setup.run()
    print(result.describe())
    print()

    model = QueuePurifierModel(
        units=machine.allocation.purifiers_per_node,
        depth=plan.budget.endpoint_rounds,
        round_time_us=machine.params.times.purify_round(0.0),
    )
    print(
        "Steady-state good-pair period: "
        f"{result.steady_state_pair_period_us:.1f} us measured vs "
        f"{model.good_pair_period_us:.1f} us predicted by the queue-purifier model."
    )
    print()
    print("Per-link generator utilisation (first five links):")
    for name, value in list(result.generator_utilisation.items())[:5]:
        print(f"  {name:24s} {value:6.1%}")
    print("Per-router teleporter utilisation (first five routers):")
    for name, value in list(result.teleporter_utilisation.items())[:5]:
        print(f"  {name:24s} {value:6.1%}")
    print()
    print(
        "The pipeline keeps only a handful of pairs in flight at any moment —\n"
        "the paper's observation that per-node storage requirements stay small."
    )


if __name__ == "__main__":
    main()
