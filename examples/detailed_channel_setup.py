"""Run a whole workload at individual EPR-pair granularity.

The fluid backend treats channel setup as a fluid; the ``detailed`` transport
backend simulates the same workload at the granularity the hardware works at:
raw pairs are pulled from the virtual wire buffers, swapped through every
intermediate router (queueing for its X or Y teleporter set alongside every
other in-flight channel), and climbed through the endpoint queue purifiers
until enough above-threshold pairs exist to teleport each logical operand.

Both granularities are registered transport backends, so the same machine and
instruction stream run under either — this example runs both and compares.

Run with:  python examples/detailed_channel_setup.py
"""

from repro import QuantumMachine, ResourceAllocation
from repro.core.logical import STEANE_LEVEL_1
from repro.sim import CommunicationSimulator, backend_descriptions
from repro.workloads.qft import qft_stream


def main() -> None:
    print("Registered transport backends:")
    for name, description in backend_descriptions().items():
        print(f"  {name:9s} {description}")
    print()

    machine = QuantumMachine(
        6,
        allocation=ResourceAllocation(teleporters_per_node=4, generators_per_node=4, purifiers_per_node=2),
        num_qubits=8,
        encoding=STEANE_LEVEL_1,  # 7 physical qubits per logical qubit keeps the run small
    )
    stream = qft_stream(8)
    print(f"Workload: {stream.name} on {machine.describe()}")
    print()

    results = {}
    for backend in ("fluid", "detailed"):
        results[backend] = CommunicationSimulator(machine, backend=backend).run(stream)
        result = results[backend]
        print(f"[{backend}] makespan {result.makespan_us:,.0f} us, "
              f"{result.channel_count} channels, "
              f"bottleneck: {result.bottleneck_resource()}")
        for name, value in sorted(result.resource_utilisation.items()):
            print(f"  {name:14s} {value:6.1%}")
        print()

    ratio = results["detailed"].makespan_us / results["fluid"].makespan_us
    print(
        f"Detailed/fluid makespan ratio: {ratio:.3f} — the per-pair model "
        "queues real swaps and\npurification rounds, yet lands within the "
        "documented cross-check tolerance of the\nfluid steady state "
        "(`python -m repro verify run --backends`)."
    )
    print()
    print(
        "The pipeline keeps only a handful of pairs in flight at any moment —\n"
        "the paper's observation that per-node storage requirements stay small."
    )


if __name__ == "__main__":
    main()
