"""Purification study: DEJMPS vs BBPSSW and where to purify along a channel.

Reproduces the reasoning behind Figures 8, 10 and 11: how fast each
recurrence protocol converges, what its noise floor is, and how the choice of
purification placement changes the EPR budget of a long channel.

Run with:  python examples/purification_study.py
"""

from repro import IonTrapParameters, get_protocol, standard_schemes
from repro.core.budget import compare_placements
from repro.physics.states import BellDiagonalState


def protocol_comparison(params: IonTrapParameters) -> None:
    print("=== Protocol comparison (Figure 8) ===")
    state = BellDiagonalState.werner(0.99)
    target = params.threshold_fidelity
    for name in ("dejmps", "bbpssw"):
        protocol = get_protocol(name, params)
        series = protocol.error_series(state, 12)
        rounds = protocol.rounds_to_fidelity(state, target)
        floor = 1.0 - protocol.max_achievable_fidelity(state)
        print(f"{protocol.name}: rounds to threshold = {rounds}, error floor = {floor:.2e}")
        print("  error per round:", " ".join(f"{e:.1e}" for e in series))
    print()


def placement_comparison(params: IonTrapParameters) -> None:
    print("=== Purification placement (Figures 10 and 11), 30-hop channel ===")
    print(f"{'placement':32s} {'rounds':>6s} {'teleported':>12s} {'total':>12s}")
    for budget in compare_placements(30, standard_schemes(), params):
        print(
            f"{budget.placement.label:32s} {budget.endpoint_rounds:6d} "
            f"{budget.pairs_teleported:12.3g} {budget.total_pairs:12.3g}"
        )
    print()
    print(
        "Purifying after every teleport is exponentially wasteful; purifying the\n"
        "virtual wires keeps channel traffic (and endpoint purifier load) lowest,\n"
        "which is why the paper's design purifies on the wires and at the endpoints."
    )


def main() -> None:
    params = IonTrapParameters.default()
    protocol_comparison(params)
    placement_comparison(params)


if __name__ == "__main__":
    main()
