"""Shor's-algorithm communication kernels on one machine (Section 5.2).

Compares the three communication patterns of Shor's factorisation algorithm —
the all-to-all QFT, the bipartite Modular Multiplication and the mixed
Modular Exponentiation — on the same machine, showing how the pattern shape
changes channel lengths, contention and runtime.

Run with:  python examples/shor_kernels.py
"""

from repro import CommunicationSimulator, QuantumMachine, ResourceAllocation
from repro.workloads import shor_kernel_streams


def main() -> None:
    grid_side = 6
    qubits = grid_side * grid_side
    machine = QuantumMachine(
        grid_side, allocation=ResourceAllocation(8, 8, 4), layout="home_base"
    )
    print(machine.describe())
    print()
    kernels = shor_kernel_streams(qubits)
    print(f"{'kernel':8s} {'ops':>6s} {'makespan (s)':>13s} {'avg hops':>9s} "
          f"{'pairs transited':>16s} {'peak channels':>14s}")
    results = {}
    for name, stream in kernels.items():
        result = CommunicationSimulator(machine).run(stream)
        results[name] = result
        print(
            f"{name:8s} {len(stream):6d} {result.makespan_us / 1e6:13.3f} "
            f"{result.average_channel_hops():9.2f} {result.total_pairs_transited():16.3g} "
            f"{result.max_concurrent_channels():14d}"
        )
    print()
    qft, modmult = results["qft"], results["modmult"]
    print(
        "The QFT's all-to-all pattern produces the longest schedule (every qubit\n"
        "must visit every other in order), while modular multiplication's bipartite\n"
        "pattern exposes more parallelism per unit of communication; modular\n"
        "exponentiation mixes the two.  Runtime per operation:\n"
        f"  QFT     : {qft.makespan_us / len(kernels['qft']):8.1f} us/op\n"
        f"  ModMult : {modmult.makespan_us / len(kernels['modmult']):8.1f} us/op"
    )


if __name__ == "__main__":
    main()
