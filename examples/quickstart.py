"""Quickstart: build a reliable quantum channel and inspect its cost.

This walks through the paper's core abstraction: to move a logical qubit
between two distant functional units, you distribute EPR pairs over a grid of
teleporter nodes, purify them at the endpoints to the fault-tolerance
threshold, and teleport the data through them.

Run with:  python examples/quickstart.py
"""

from repro import (
    IonTrapParameters,
    QuantumChannel,
    crossover_distance_cells,
    pairs_per_logical_communication,
)
from repro.core.metrics import evaluate_channel_metrics


def main() -> None:
    params = IonTrapParameters.default()
    print("Ion-trap technology parameters (paper Tables 1 and 2)")
    print(params.describe())
    print()

    crossover = crossover_distance_cells(params)
    print(
        f"Teleportation beats ballistic movement beyond ~{crossover} cells, "
        "which is why the mesh places teleporter (T') nodes one 'hop' "
        f"(= {params.cells_per_hop} cells) apart.\n"
    )

    # A channel spanning 30 hops: the corner-to-corner distance of the
    # paper's 16x16 grid of logical qubits.
    channel = QuantumChannel(hops=30, params=params)
    report = channel.build(data_fidelity_in=1.0)
    print(report.describe())
    print()

    metrics = evaluate_channel_metrics(report, teleporters_per_node=4)
    print("The paper's evaluation metrics for this channel:")
    print(metrics.describe())
    print()

    rounds = report.budget.endpoint_rounds
    print(
        f"Endpoint purification depth is {rounds} rounds, so moving one "
        f"level-2 encoded logical qubit (49 physical qubits) needs "
        f"{pairs_per_logical_communication(rounds)} raw EPR pairs "
        "(the paper's 392)."
    )


if __name__ == "__main__":
    main()
