"""Regenerate every (light) table and figure of the paper in one run.

Prints the full reproduction report: Tables 1/2, the derived text claims, and
Figures 8-12.  Figure 16 requires a contention simulation sweep and is left to
``pytest benchmarks/bench_fig16_resource_allocation.py --benchmark-only -s``
(or pass ``--heavy`` here to include a reduced-scale version).

Run with:  python examples/reproduce_all.py [--heavy]
"""

import sys

from repro.analysis.report import reproduction_report


def main() -> None:
    include_heavy = "--heavy" in sys.argv[1:]
    print(reproduction_report(include_heavy=include_heavy))


if __name__ == "__main__":
    main()
