"""Simulate the QFT communication pattern on a mesh machine (Section 5).

Runs the all-to-all Quantum Fourier Transform pattern under both machine
layouts (Home Base and Mobile Qubit) and two resource allocations, reporting
runtime, channel statistics and which resource was the bottleneck — a small
version of the Figure 16 experiment.

Run with:  python examples/qft_simulation.py [grid_side]
"""

import sys

from repro import CommunicationSimulator, QuantumMachine, ResourceAllocation, qft_stream


def run_one(grid_side: int, layout: str, allocation: ResourceAllocation) -> None:
    machine = QuantumMachine(grid_side, allocation=allocation, layout=layout)
    stream = qft_stream(grid_side * grid_side)
    result = CommunicationSimulator(machine).run(stream)
    bottleneck = result.bottleneck_resource()
    print(
        f"{layout:13s} {allocation.label:16s} "
        f"makespan = {result.makespan_us / 1e6:7.3f} s, "
        f"channels = {result.channel_count:5d}, "
        f"avg hops = {result.average_channel_hops():5.2f}, "
        f"bottleneck = {bottleneck} "
        f"({result.resource_utilisation.get(bottleneck, 0):.0%} utilised)"
    )


def main() -> None:
    grid_side = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    qubits = grid_side * grid_side
    stream = qft_stream(qubits)
    print(
        f"QFT on {qubits} logical qubits: {len(stream)} two-qubit operations, "
        f"critical path {stream.critical_path_length()}, "
        f"max parallelism {stream.max_parallelism()}\n"
    )
    allocations = [
        ResourceAllocation.uniform(1024),          # effectively unlimited (baseline)
        ResourceAllocation(8, 8, 8),               # balanced
        ResourceAllocation(8, 8, 1),               # starve the purifiers (t = g = 8p)
    ]
    for layout in ("home_base", "mobile_qubit"):
        for allocation in allocations:
            run_one(grid_side, layout, allocation)
        print()
    print(
        "Note how the Home Base layout keeps many long channels in flight (teleporter\n"
        "bound), while the Mobile Qubit layout's nearest-neighbour walk shifts the\n"
        "bottleneck to the endpoint purifiers when p is starved — the Figure 16 effect."
    )


if __name__ == "__main__":
    main()
